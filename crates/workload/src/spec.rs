//! SPEC-like and OMP-like application profiles.
//!
//! These are *synthetic stand-ins* for the paper's benchmarks (see
//! `DESIGN.md` §1): we do not have SPEC binaries, so each profile is
//! calibrated so that its miss curve, intensity, and sharing behaviour match
//! what the paper reports or what is commonly published for that benchmark:
//!
//! * the paper's Fig. 2 pins down `omnet` (≈85 MPKI cliff vanishing at
//!   2.5 MB), `milc` (streaming, flat ≈25 MPKI), and `ilbdc` (512 KB shared
//!   footprint);
//! * §VI-B pins down `mgrid` (private-heavy and intensive) vs. `md`/`nab`
//!   (shared-heavy);
//! * the remaining apps span the classification spectrum (thrashing /
//!   fitting / friendly / insensitive, cf. CRUISE) with footprints from
//!   192 KB to tens of MB, so mixes exhibit the capacity contention the
//!   paper studies.
//!
//! Footprints are in 64-byte lines: 1 MB = 16384 lines.

use crate::{AppProfile, Pattern};
use std::sync::OnceLock;

/// Lines per KB of footprint (64-byte lines).
const KB: u64 = 1024 / 64;
/// Lines per MB of footprint.
const MB: u64 = 1024 * KB;

fn single_threaded_profiles() -> Vec<AppProfile> {
    use Pattern::{Hot, Loop, Mix, Scan, Zipf};
    vec![
        // The three apps the paper's case study (§II-B, Fig. 2) pins down:
        //
        // omnet: ~85 MPKI below 2.5 MB, near-zero above (its data "fits at
        // 2.5 MB"). The dominant term is a loop that thrashes LRU until the
        // allocation covers it; smaller Zipf/hot terms round off the cliff.
        // The loop is sized at 1.75 MB so that the *monitor-measured* curve
        // (which smears a hard cliff upward by ~0.7 MB — real hardware GMONs
        // do the same; see `monitor::gmon` tests) reaches its knee at the
        // paper's 2.5 MB.
        AppProfile::single_threaded(
            "omnet",
            90.0,
            1.0,
            3.0,
            Mix(vec![
                (0.80, Loop { lines: 1792 * KB }),
                (
                    0.14,
                    Zipf {
                        lines: 512 * KB,
                        alpha: 0.6,
                    },
                ),
                (0.06, Hot { lines: 32 * KB }),
            ]),
        ),
        // milc: streaming; no reuse at any realistic LLC size.
        AppProfile::single_threaded("milc", 26.0, 0.7, 4.0, Scan { lines: 64 * MB }),
        // The remaining 14 memory-intensive SPEC CPU2006 apps (≥ 5 L2 MPKI).
        AppProfile::single_threaded(
            "bzip2",
            8.0,
            1.2,
            2.0,
            Zipf {
                lines: MB,
                alpha: 0.7,
            },
        ),
        AppProfile::single_threaded(
            "gcc",
            10.0,
            1.1,
            1.8,
            Mix(vec![
                (0.6, Hot { lines: 256 * KB }),
                (
                    0.4,
                    Zipf {
                        lines: 2 * MB,
                        alpha: 0.6,
                    },
                ),
            ]),
        ),
        AppProfile::single_threaded("bwaves", 25.0, 0.9, 4.0, Loop { lines: 6 * MB }),
        AppProfile::single_threaded(
            "mcf",
            60.0,
            0.45,
            2.5,
            Mix(vec![
                (0.5, Hot { lines: 512 * KB }),
                (
                    0.5,
                    Zipf {
                        lines: 8 * MB,
                        alpha: 0.55,
                    },
                ),
            ]),
        ),
        AppProfile::single_threaded("zeusmp", 12.0, 1.0, 3.0, Loop { lines: MB + MB / 2 }),
        AppProfile::single_threaded(
            "cactusADM",
            14.0,
            0.95,
            2.5,
            Mix(vec![
                (0.5, Hot { lines: 128 * KB }),
                (0.5, Loop { lines: 2 * MB }),
            ]),
        ),
        AppProfile::single_threaded(
            "leslie3d",
            20.0,
            0.85,
            3.5,
            Mix(vec![
                (0.4, Hot { lines: 256 * KB }),
                (0.6, Loop { lines: 3 * MB }),
            ]),
        ),
        AppProfile::single_threaded("calculix", 6.0, 1.4, 2.0, Hot { lines: 192 * KB }),
        AppProfile::single_threaded(
            "GemsFDTD",
            22.0,
            0.8,
            3.0,
            Mix(vec![
                (0.3, Hot { lines: 512 * KB }),
                (0.7, Loop { lines: 5 * MB }),
            ]),
        ),
        AppProfile::single_threaded("libquantum", 28.0, 0.75, 5.0, Scan { lines: 32 * MB }),
        AppProfile::single_threaded(
            "lbm",
            40.0,
            0.6,
            5.0,
            Mix(vec![
                (0.85, Scan { lines: 48 * MB }),
                (0.15, Hot { lines: 128 * KB }),
            ]),
        ),
        AppProfile::single_threaded(
            "astar",
            15.0,
            0.9,
            1.5,
            Zipf {
                lines: MB + MB / 2,
                alpha: 0.8,
            },
        ),
        AppProfile::single_threaded(
            "sphinx3",
            18.0,
            1.0,
            2.5,
            Mix(vec![
                (0.5, Hot { lines: 512 * KB }),
                (
                    0.5,
                    Loop {
                        lines: 3 * MB + MB / 2,
                    },
                ),
            ]),
        ),
        AppProfile::single_threaded(
            "xalancbmk",
            30.0,
            0.85,
            2.0,
            Mix(vec![
                (0.4, Hot { lines: 256 * KB }),
                (0.6, Loop { lines: 4 * MB }),
            ]),
        ),
    ]
}

fn multi_threaded_profiles() -> Vec<AppProfile> {
    use Pattern::{Hot, Loop, Mix, Zipf};
    vec![
        // ilbdc: the paper's Fig. 2 shows a small (512 KB) footprint; §II-B
        // describes it as shared-data dominated, preferring clustered
        // placement.
        AppProfile::multi_threaded(
            "ilbdc",
            8,
            12.0,
            1.0,
            2.5,
            Hot { lines: 32 * KB },
            Hot { lines: 512 * KB },
            0.85,
        ),
        // md / nab: shared-heavy (Fig. 16 case study clusters them).
        AppProfile::multi_threaded(
            "md",
            8,
            8.0,
            1.1,
            2.0,
            Hot { lines: 16 * KB },
            Hot { lines: 256 * KB },
            0.9,
        ),
        AppProfile::multi_threaded(
            "nab",
            8,
            10.0,
            1.0,
            2.2,
            Hot { lines: 64 * KB },
            Zipf {
                lines: MB,
                alpha: 0.6,
            },
            0.75,
        ),
        // mgrid: private-heavy and intensive — CDCS spreads its threads
        // (Fig. 16 case study).
        AppProfile::multi_threaded(
            "mgrid",
            8,
            35.0,
            0.8,
            3.5,
            Loop { lines: 384 * KB },
            Hot { lines: 64 * KB },
            0.1,
        ),
        AppProfile::multi_threaded(
            "swim",
            8,
            25.0,
            0.85,
            4.0,
            Loop { lines: 512 * KB },
            Hot { lines: 128 * KB },
            0.2,
        ),
        AppProfile::multi_threaded(
            "applu331",
            8,
            15.0,
            0.95,
            3.0,
            Loop { lines: 256 * KB },
            Hot { lines: 512 * KB },
            0.4,
        ),
        AppProfile::multi_threaded(
            "fma3d",
            8,
            12.0,
            1.0,
            2.5,
            Hot { lines: 64 * KB },
            Zipf {
                lines: 2 * MB,
                alpha: 0.65,
            },
            0.6,
        ),
        AppProfile::multi_threaded(
            "bt331",
            8,
            14.0,
            0.9,
            2.8,
            Hot { lines: 128 * KB },
            Hot { lines: MB },
            0.5,
        ),
        AppProfile::multi_threaded(
            "botsspar",
            8,
            18.0,
            0.85,
            2.5,
            Mix(vec![
                (0.7, Hot { lines: 32 * KB }),
                (0.3, Loop { lines: 128 * KB }),
            ]),
            Zipf {
                lines: 4 * MB,
                alpha: 0.7,
            },
            0.7,
        ),
    ]
}

/// The 16 memory-intensive SPEC-CPU2006-like single-threaded profiles the
/// paper's single-threaded mixes draw from (§V).
pub fn all_single_threaded() -> &'static [AppProfile] {
    static CACHE: OnceLock<Vec<AppProfile>> = OnceLock::new();
    CACHE.get_or_init(single_threaded_profiles)
}

/// The SPEC-OMP2012-like 8-thread profiles the multi-threaded mixes draw
/// from (§V, §VI-B).
pub fn all_multi_threaded() -> &'static [AppProfile] {
    static CACHE: OnceLock<Vec<AppProfile>> = OnceLock::new();
    CACHE.get_or_init(multi_threaded_profiles)
}

/// Looks up a profile by benchmark name across both suites.
///
/// ```
/// let milc = cdcs_workload::spec::by_name("milc").unwrap();
/// assert_eq!(milc.threads, 1);
/// let ilbdc = cdcs_workload::spec::by_name("ilbdc").unwrap();
/// assert_eq!(ilbdc.threads, 8);
/// ```
pub fn by_name(name: &str) -> Option<&'static AppProfile> {
    all_single_threaded()
        .iter()
        .chain(all_multi_threaded().iter())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessStream, StreamTarget};
    use cdcs_cache::{Line, StackProfiler};

    /// Measures an app's exact private-stream miss curve over `n` accesses.
    fn private_curve(name: &str, n: usize) -> (cdcs_cache::MissCurve, u64) {
        let app = by_name(name).unwrap();
        let mut stream = AccessStream::for_thread(app, 0, 1234);
        let mut prof = StackProfiler::new();
        let mut count = 0;
        while count < n {
            let (t, o) = stream.next_access();
            if t == StreamTarget::ThreadPrivate {
                prof.record(Line(o));
                count += 1;
            }
        }
        (prof.miss_curve(), n as u64)
    }

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(all_single_threaded().len(), 16);
        assert_eq!(all_multi_threaded().len(), 9);
        // All names unique.
        let mut names: Vec<&str> = all_single_threaded()
            .iter()
            .chain(all_multi_threaded().iter())
            .map(|p| p.name.as_str())
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn all_profiles_validate() {
        for p in all_single_threaded().iter().chain(all_multi_threaded()) {
            p.validate().expect("profile must validate");
        }
    }

    #[test]
    fn omnet_has_cliff_below_2_5_mb() {
        // Paper Fig. 2: omnet misses heavily at small sizes and fits at
        // 2.5 MB. (The exact profile knee sits at ~1.8 MB so that the
        // *monitor-measured* knee, smeared upward by way-granularity
        // Poisson noise, lands at the paper's 2.5 MB.)
        let (curve, n) = private_curve("omnet", 400_000);
        let at_1_5mb = curve.misses_at(1.5 * 16384.0) / n as f64;
        let at_2_5mb = curve.misses_at(2.5 * 16384.0) / n as f64;
        assert!(at_1_5mb > 0.75, "miss ratio at 1.5 MB: {at_1_5mb}");
        assert!(at_2_5mb < 0.15, "miss ratio at 2.5 MB: {at_2_5mb}");
    }

    #[test]
    fn milc_is_streaming() {
        let (curve, n) = private_curve("milc", 300_000);
        // Flat at ~100% misses even with 8 MB.
        let at_8mb = curve.misses_at((8 * 16384) as f64) / n as f64;
        assert!(at_8mb > 0.95, "miss ratio at 8 MB: {at_8mb}");
    }

    #[test]
    fn ilbdc_shared_fits_in_512_kb() {
        let app = by_name("ilbdc").unwrap();
        assert_eq!(app.shared_footprint_lines(), 8192); // 512 KB
        let mut stream = AccessStream::for_thread(app, 0, 5);
        let mut prof = StackProfiler::new();
        let mut count = 0;
        while count < 200_000 {
            let (t, o) = stream.next_access();
            if t == StreamTarget::ProcessShared {
                prof.record(Line(o));
                count += 1;
            }
        }
        let curve = prof.miss_curve();
        let at_512kb = curve.misses_at(8192.0) / 200_000.0;
        assert!(at_512kb < 0.1, "shared miss ratio at 512 KB: {at_512kb}");
    }

    #[test]
    fn mgrid_is_private_heavy_and_intensive() {
        let mgrid = by_name("mgrid").unwrap();
        assert!(mgrid.shared_frac < 0.2);
        // More intensive than the shared-heavy OMP apps.
        for other in ["md", "nab", "ilbdc"] {
            assert!(mgrid.apki > by_name(other).unwrap().apki * 2.0);
        }
    }

    #[test]
    fn omnet_is_most_intensive_single_threaded() {
        let omnet = by_name("omnet").unwrap();
        for p in all_single_threaded() {
            assert!(p.apki <= omnet.apki);
        }
    }

    #[test]
    fn footprint_spectrum_is_wide() {
        // Mixes only exercise contention if footprints vary widely.
        let fps: Vec<u64> = all_single_threaded()
            .iter()
            .map(|p| p.total_footprint_lines())
            .collect();
        let min = *fps.iter().min().unwrap();
        let max = *fps.iter().max().unwrap();
        assert!(min <= 4096, "smallest footprint {min} lines");
        assert!(max >= 512 * 1024, "largest footprint {max} lines");
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("not-a-benchmark").is_none());
    }
}

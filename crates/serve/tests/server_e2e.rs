//! End-to-end daemon tests: a spec submitted over HTTP round-trips to a
//! report byte-equal to the in-process artifact; cancellation stops a job
//! cleanly over the wire; and two concurrent jobs interleave fairly on a
//! 2-worker pool (pinned via the scheduler's claim log, not timing).

use cdcs_bench::exp::{BaseConfig, ExperimentSpec, GridSpec, MixEntry, SpecKind};
use cdcs_bench::specs;
use cdcs_serve::protocol::JobState;
use cdcs_serve::{Client, JobServer};
use cdcs_sim::runner::CellRun;
use cdcs_sim::Scheme;
use cdcs_workload::MixSpec;
use std::time::Duration;

fn small(mut spec: ExperimentSpec) -> ExperimentSpec {
    spec.set_base(BaseConfig::SmallTest);
    spec.name = format!("{}_small", spec.name);
    spec
}

/// A spec with exactly one cell per app name (no baseline, no alone runs):
/// the cell count is what the scheduling tests reason about.
fn cells_spec(name: &str, apps: &[&str]) -> ExperimentSpec {
    ExperimentSpec {
        name: name.into(),
        kind: SpecKind::Grid(GridSpec {
            base: BaseConfig::SmallTest,
            schemes: vec![Scheme::cdcs()],
            mixes: apps
                .iter()
                .map(|app| MixEntry::auto(MixSpec::Named(vec![app.to_string()])))
                .collect(),
            seeds: Vec::new(),
            patches: Vec::new(),
            run: CellRun::Steady,
            weighted_speedup: false,
            auto_intra_cell: false,
        }),
    }
}

fn wait_terminal(client: &Client, id: u64) -> JobState {
    loop {
        let status = client.status(id).expect("status");
        match status.state {
            JobState::Queued | JobState::Running => {
                std::thread::sleep(Duration::from_millis(20));
            }
            terminal => return terminal,
        }
    }
}

#[test]
fn served_report_is_byte_equal_to_in_process_artifact() {
    let server = JobServer::start("127.0.0.1:0", 2).expect("server");
    let client = Client::new(server.addr().to_string());

    let spec = small(specs::quickstart());
    let spec_json = serde_json::to_string(&spec).expect("spec serializes");
    let served = client
        .run(&spec_json, Duration::from_millis(25))
        .expect("job runs to a report");

    // The same spec run in process, serialized exactly as
    // `cdcs_bench::artifact::write` persists it.
    let local = spec.run().expect("in-process run");
    let expected = serde_json::to_string_pretty(&local).expect("report serializes");
    assert_eq!(
        served, expected,
        "served report bytes diverge from the in-process artifact"
    );

    // The spec embedded in the served report survived the wire: parse and
    // compare structurally too.
    let parsed: cdcs_bench::exp::ExperimentReport =
        serde_json::from_str(&served).expect("served report parses");
    assert_eq!(parsed.spec, spec);
    server.shutdown();
}

#[test]
fn http_cancellation_stops_issuing_and_reports_partial_progress() {
    // One worker, many cells: the cancel lands long before the job could
    // finish.
    let server = JobServer::start("127.0.0.1:0", 1).expect("server");
    let client = Client::new(server.addr().to_string());

    let spec = cells_spec(
        "cancel_me",
        &[
            "calculix",
            "milc",
            "omnet",
            "bzip2",
            "xalancbmk",
            "ilbdc",
            "mgrid",
            "md",
            "nab",
            "calculix",
            "milc",
            "omnet",
        ],
    );
    let id = client
        .submit(&serde_json::to_string(&spec).expect("spec serializes"))
        .expect("submit");
    let status = client.cancel(id).expect("cancel");
    assert!(status.total_cells >= 12);

    assert_eq!(wait_terminal(&client, id), JobState::Cancelled);
    let status = client.status(id).expect("status");
    assert!(
        status.completed_cells < status.total_cells,
        "cancellation should leave cells unrun: {status:?}"
    );
    assert_eq!(status.issued_cells, status.completed_cells);

    // No report for a cancelled job.
    let err = client
        .report(id)
        .expect_err("cancelled jobs have no report");
    assert!(err.contains("409"), "unexpected error: {err}");
    server.shutdown();
}

#[test]
fn concurrent_jobs_interleave_fairly_on_a_two_worker_pool() {
    let server = JobServer::start("127.0.0.1:0", 2).expect("server");
    let client = Client::new(server.addr().to_string());

    let a_apps = ["calculix", "milc", "omnet", "bzip2", "xalancbmk", "ilbdc"];
    let b_apps = ["mgrid", "md", "nab", "calculix"];
    let a = client
        .submit(&serde_json::to_string(&cells_spec("fair_a", &a_apps)).unwrap())
        .expect("submit a");
    let b = client
        .submit(&serde_json::to_string(&cells_spec("fair_b", &b_apps)).unwrap())
        .expect("submit b");

    assert_eq!(wait_terminal(&client, a), JobState::Done);
    assert_eq!(wait_terminal(&client, b), JobState::Done);
    let status_a = client.status(a).expect("status a");
    let status_b = client.status(b).expect("status b");
    assert_eq!(status_a.completed_cells, a_apps.len());
    assert_eq!(status_b.completed_cells, b_apps.len());

    // Fairness, deterministically: claims are logged under the scheduler
    // lock, and the rotation pops one cell per job per lap. From B's first
    // claim until either job drains, the log must strictly alternate —
    // no job may claim twice in a row while the other still has pending
    // cells.
    let log = server.claim_log();
    let first_b = log
        .iter()
        .position(|&id| id == b)
        .expect("job B claimed at least once");
    let mut remaining_a = a_apps.len() - log[..first_b].iter().filter(|&&id| id == a).count();
    let mut remaining_b = b_apps.len();
    assert!(
        remaining_a > 0,
        "job A finished before job B started; the fairness window is empty"
    );
    let mut prev: Option<u64> = None;
    for &id in &log[first_b..] {
        if remaining_a > 0 && remaining_b > 0 {
            if let Some(prev) = prev {
                assert_ne!(
                    prev, id,
                    "job {id} claimed twice in a row while the other had \
                     pending cells; claim log: {log:?}"
                );
            }
        }
        if id == a {
            remaining_a -= 1;
        } else {
            remaining_b -= 1;
        }
        prev = Some(id);
    }
    assert_eq!((remaining_a, remaining_b), (0, 0), "claim log: {log:?}");
    server.shutdown();
}

#[test]
fn protocol_errors_are_structured() {
    let server = JobServer::start("127.0.0.1:0", 1).expect("server");
    let client = Client::new(server.addr().to_string());

    // Unknown job.
    let err = client.status(999).expect_err("unknown job");
    assert!(err.contains("404"), "unexpected error: {err}");
    // Malformed spec.
    let err = client.submit("{not json").expect_err("bad spec");
    assert!(err.contains("400"), "unexpected error: {err}");
    // A spec that parses but fails expansion (no schemes).
    let mut spec = cells_spec("empty", &["milc"]);
    if let SpecKind::Grid(grid) = &mut spec.kind {
        grid.schemes.clear();
    }
    let err = client
        .submit(&serde_json::to_string(&spec).unwrap())
        .expect_err("unexpandable spec");
    assert!(err.contains("400"), "unexpected error: {err}");
    // Health probe.
    let response =
        cdcs_serve::http::request(&client.addr, "GET", "/healthz", &[], None).expect("healthz");
    assert_eq!(response.status, 200);
    assert!(response.body.contains("true"));
    let report = server.shutdown();
    assert_eq!(report.panicked_threads, 0);
}

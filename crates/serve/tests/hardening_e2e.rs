//! Fault-tolerance and multi-tenant e2e: admission control bounds
//! overload (429 + `Retry-After`, tenant isolation), deadlines move jobs
//! to `DeadlineExceeded`, injected faults (cell panics, slow cells,
//! dropped/garbled connections) degrade exactly one job while the daemon
//! and other tenants keep working, the client retries through connection
//! loss and a daemon restart, and drain-mode shutdown finishes queued
//! cells.

use cdcs_bench::exp::{BaseConfig, ExperimentSpec, GridSpec, MixEntry, SpecKind};
use cdcs_bench::specs;
use cdcs_serve::admission::TenantLimit;
use cdcs_serve::faults::FaultPlan;
use cdcs_serve::protocol::JobState;
use cdcs_serve::{Client, JobServer, RetryPolicy, ServerConfig};
use cdcs_sim::runner::CellRun;
use cdcs_sim::Scheme;
use cdcs_workload::MixSpec;
use std::sync::Arc;
use std::time::Duration;

fn small(mut spec: ExperimentSpec) -> ExperimentSpec {
    spec.set_base(BaseConfig::SmallTest);
    spec.name = format!("{}_small", spec.name);
    spec
}

/// A spec with exactly one cell per app name (no baseline, no alone runs).
fn cells_spec(name: &str, apps: &[&str]) -> ExperimentSpec {
    ExperimentSpec {
        name: name.into(),
        kind: SpecKind::Grid(GridSpec {
            base: BaseConfig::SmallTest,
            schemes: vec![Scheme::cdcs()],
            mixes: apps
                .iter()
                .map(|app| MixEntry::auto(MixSpec::Named(vec![app.to_string()])))
                .collect(),
            seeds: Vec::new(),
            patches: Vec::new(),
            run: CellRun::Steady,
            weighted_speedup: false,
            auto_intra_cell: false,
        }),
    }
}

fn spec_json(spec: &ExperimentSpec) -> String {
    serde_json::to_string(spec).expect("spec serializes")
}

fn wait_terminal(client: &Client, id: u64) -> JobState {
    loop {
        let status = client.status(id).expect("status");
        if status.state.is_terminal() {
            return status.state;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn config_with(faults: &str) -> ServerConfig {
    let mut config = ServerConfig::new("127.0.0.1:0", 2);
    config.faults = Arc::new(FaultPlan::parse(faults).expect("fault spec"));
    config
}

#[test]
fn queue_cap_overload_gets_429_with_retry_after() {
    let mut config = config_with("slow_cell:0:400");
    config.queue_cap = Some(1);
    config.workers = 1;
    let server = JobServer::start_with(config).expect("server");
    let addr = server.addr().to_string();
    let client = Client::new(addr.clone());

    // The slow first cell keeps job A active while the burst arrives.
    let a = client
        .submit(&spec_json(&cells_spec("hold", &["milc", "omnet"])))
        .expect("first job admitted");

    // A burst past the cap: raw request so we can inspect the headers.
    let refused = cdcs_serve::http::request(
        &addr,
        "POST",
        "/jobs",
        &[],
        Some(&spec_json(&cells_spec("burst", &["milc"]))),
    )
    .expect("refusal is a clean HTTP exchange");
    assert_eq!(refused.status, 429, "body: {}", refused.body);
    let retry_after: f64 = refused
        .header("retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is delta-seconds");
    assert!(retry_after >= 1.0);
    assert!(refused.body.contains("queue is full"), "{}", refused.body);

    // Once the queue drains, the same tenant is welcome again — the
    // retrying client rides the 429 window without user intervention.
    assert_eq!(wait_terminal(&client, a), JobState::Done);
    client
        .submit(&spec_json(&cells_spec("after_drain", &["milc"])))
        .expect("admitted after the queue drained");
    server.shutdown();
}

#[test]
fn token_buckets_isolate_a_greedy_tenant_from_a_quiet_one() {
    let mut config = ServerConfig::new("127.0.0.1:0", 2);
    config.tenant_limit = Some(TenantLimit {
        burst: 2.0,
        rate: 0.001, // no meaningful refill inside the test window
    });
    let server = JobServer::start_with(config).expect("server");
    let greedy = Client::new(server.addr().to_string())
        .with_tenant("greedy")
        .with_retry(RetryPolicy::none());
    let quiet = Client::new(server.addr().to_string()).with_tenant("quiet");

    let spec = spec_json(&cells_spec("one", &["milc"]));
    let a = greedy.submit(&spec).expect("burst credit 1");
    let b = greedy.submit(&spec).expect("burst credit 2");
    let err = greedy.submit(&spec).expect_err("burst exhausted");
    assert!(err.contains("429"), "{err}");
    assert!(err.contains("greedy"), "{err}");

    // The greedy tenant's exhaustion is invisible to the quiet tenant.
    let c = quiet.submit(&spec).expect("quiet tenant admitted");
    for id in [a, b, c] {
        assert_eq!(wait_terminal(&quiet, id), JobState::Done);
    }
    let statuses = quiet.list().expect("list");
    assert_eq!(statuses[a as usize].tenant, "greedy");
    assert_eq!(statuses[c as usize].tenant, "quiet");
    server.shutdown();
}

#[test]
fn deadline_moves_running_and_queued_jobs_to_deadline_exceeded() {
    // One worker held for 400ms by the injected slow cell: the running
    // job's deadline expires mid-cell (watchdog), and a queued job's
    // deadline expires before it ever claims.
    let mut config = config_with("slow_cell:0:400");
    config.workers = 1;
    let server = JobServer::start_with(config).expect("server");
    let client = Client::new(server.addr().to_string()).with_deadline_ms(60);

    let running = client
        .submit(&spec_json(&cells_spec("slow", &["milc", "omnet"])))
        .expect("submit running");
    let queued = client
        .submit(&spec_json(&cells_spec("starved", &["milc"])))
        .expect("submit queued");
    assert_eq!(wait_terminal(&client, running), JobState::DeadlineExceeded);
    assert_eq!(wait_terminal(&client, queued), JobState::DeadlineExceeded);

    // No report either way.
    for id in [running, queued] {
        let err = client.report(id).expect_err("expired jobs have no report");
        assert!(err.contains("409"), "{err}");
    }

    // The worker freed up: a deadline-free job completes.
    let clean = Client::new(server.addr().to_string());
    let ok = clean
        .submit(&spec_json(&cells_spec("clean", &["milc"])))
        .expect("submit clean");
    assert_eq!(wait_terminal(&clean, ok), JobState::Done);
    server.shutdown();
}

#[test]
fn injected_cell_panic_fails_one_job_and_the_daemon_serves_on() {
    let server = JobServer::start_with(config_with("panic_cell:1")).expect("server");
    let addr = server.addr().to_string();
    let victim = Client::new(addr.clone()).with_tenant("victim");
    let bystander = Client::new(addr.clone()).with_tenant("bystander");

    let doomed = victim
        .submit(&spec_json(&cells_spec(
            "doomed",
            &["milc", "omnet", "bzip2"],
        )))
        .expect("submit doomed");
    assert_eq!(wait_terminal(&victim, doomed), JobState::Failed);
    let status = victim.status(doomed).expect("status");
    let error = status.error.expect("failure carries the captured message");
    assert!(
        error.contains("cell 1 panicked: injected fault: panic_cell 1"),
        "unexpected error: {error}"
    );

    // The daemon survived its worker's panic...
    let health = cdcs_serve::http::request(&addr, "GET", "/healthz", &[], None).expect("healthz");
    assert_eq!(health.status, 200);

    // ...another tenant's job completes (the fault budget is spent)...
    let spec = small(specs::quickstart());
    let served = bystander
        .run(&spec_json(&spec), Duration::from_millis(25))
        .expect("bystander job runs to a report");

    // ...and the clean run's report is byte-equal to the in-process
    // artifact: degraded service, undegraded results.
    let local = spec.run().expect("in-process run");
    let expected = serde_json::to_string_pretty(&local).expect("report serializes");
    assert_eq!(served, expected, "served report diverges after a fault");
    let report = server.shutdown();
    assert_eq!(report.panicked_threads, 0, "panic was contained in-pool");
}

#[test]
fn dropped_and_garbled_connections_are_ridden_out_by_client_retry() {
    // The first three connections the daemon sees are sabotaged; the
    // client's bounded backoff rides through them transparently.
    let server = JobServer::start_with(config_with("drop_conn:2, garble_conn:1")).expect("server");
    let client = Client::new(server.addr().to_string());

    let spec = small(specs::quickstart());
    let served = client
        .run(&spec_json(&spec), Duration::from_millis(25))
        .expect("run succeeds despite connection faults");
    let local = spec.run().expect("in-process run");
    assert_eq!(
        served,
        serde_json::to_string_pretty(&local).expect("report serializes"),
        "retries must not change the bytes"
    );
    server.shutdown();
}

#[test]
fn client_run_resubmits_after_a_daemon_restart() {
    // A scripted daemon stand-in: accepts a submission, then — as a
    // restarted daemon would — claims to have never heard of the job.
    // The client must resubmit the spec and finish against the new
    // incarnation, with no user intervention.
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicUsize, Ordering};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let posts = Arc::new(AtomicUsize::new(0));
    let posts_seen = Arc::clone(&posts);
    let script = std::thread::spawn(move || {
        loop {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 65536];
            let n = stream.read(&mut buf).expect("read");
            let request = String::from_utf8_lossy(&buf[..n]).to_string();
            let start = request.lines().next().unwrap_or("").to_string();
            let respond = |stream: &mut std::net::TcpStream, status: &str, body: &str| {
                let head = format!(
                    "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n",
                    body.len()
                );
                stream.write_all(head.as_bytes()).expect("head");
                stream.write_all(body.as_bytes()).expect("body");
            };
            if start.starts_with("POST /jobs") {
                let n = posts_seen.fetch_add(1, Ordering::SeqCst);
                // First incarnation assigns id 7; the "restarted" daemon
                // starts its ids over at 0.
                let id = if n == 0 { 7 } else { 0 };
                respond(&mut stream, "201 Created", &format!("{{\"id\":{id}}}"));
            } else if start.starts_with("GET /jobs/7") {
                // The restart forgot job 7.
                respond(&mut stream, "404 Not Found", "{\"error\":\"no job 7\"}");
            } else if start.starts_with("GET /jobs/0/report") {
                respond(&mut stream, "200 OK", "the-report-bytes");
                return; // script complete
            } else if start.starts_with("GET /jobs/0") {
                let status = "{\"id\":0,\"name\":\"x\",\"tenant\":\"default\",\
                     \"state\":\"Done\",\"total_cells\":1,\"issued_cells\":1,\
                     \"completed_cells\":1,\"error\":null}";
                respond(&mut stream, "200 OK", status);
            } else {
                respond(&mut stream, "404 Not Found", "{\"error\":\"?\"}");
            }
        }
    });

    let client = Client::new(addr);
    let report = client
        .run("{\"fake\":\"spec\"}", Duration::from_millis(5))
        .expect("run rides through the restart");
    assert_eq!(report, "the-report-bytes");
    assert_eq!(
        posts.load(std::sync::atomic::Ordering::SeqCst),
        2,
        "resubmitted once"
    );
    script.join().expect("script thread");
}

#[test]
fn client_retries_until_the_daemon_comes_up() {
    // Reserve a port, leave it dead, and only start the daemon after the
    // client has already begun calling: connect-refused is transient.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
    let addr = probe.local_addr().expect("addr").to_string();
    drop(probe);

    let spec = spec_json(&cells_spec("late", &["milc"]));
    let client_addr = addr.clone();
    let runner = std::thread::spawn(move || {
        let client = Client::new(client_addr).with_retry(RetryPolicy {
            max_attempts: 20,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(200),
        });
        client.run(&spec, Duration::from_millis(25))
    });
    std::thread::sleep(Duration::from_millis(150));
    let server = JobServer::start(&addr, 2).expect("rebind the reserved port");
    let report = runner.join().expect("runner thread");
    assert!(
        report.is_ok(),
        "run should succeed once the daemon is up: {report:?}"
    );
    server.shutdown();
}

#[test]
fn drain_shutdown_finishes_every_queued_cell() {
    let server = JobServer::start("127.0.0.1:0", 1).expect("server");
    let client = Client::new(server.addr().to_string());
    let a = client
        .submit(&spec_json(&cells_spec(
            "drain_a",
            &["calculix", "milc", "omnet", "bzip2"],
        )))
        .expect("submit a");
    let b = client
        .submit(&spec_json(&cells_spec("drain_b", &["mgrid", "md"])))
        .expect("submit b");

    // Immediate drain: nothing has necessarily even been claimed yet.
    let report = server.shutdown_drain();
    assert_eq!(report.panicked_threads, 0);
    for id in [a, b] {
        let job = &report.jobs[id as usize];
        assert_eq!(job.state, JobState::Done, "job {id}: {job:?}");
        assert_eq!(job.completed_cells, job.total_cells, "job {id}: {job:?}");
    }
}

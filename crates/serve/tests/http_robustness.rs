//! The HTTP front end is total over hostile bytes: every malformed or
//! oversized request gets a 4xx without wedging its connection thread,
//! allocating unbounded memory, or hurting the daemon's health — pinned
//! table-driven over raw byte payloads written straight to the socket.

use cdcs_serve::JobServer;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};

/// Writes `payload` raw, half-closes, and returns the status code of
/// whatever came back (0 when the server sent nothing).
fn raw_status(addr: &str, payload: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(payload).expect("send payload");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let response = String::from_utf8_lossy(&response);
    response
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or(0)
}

fn healthz_ok(addr: &str) {
    let response =
        cdcs_serve::http::request(addr, "GET", "/healthz", &[], None).expect("healthz reachable");
    assert_eq!(response.status, 200, "daemon no longer healthy");
}

#[test]
fn malformed_requests_get_4xx_without_wedging_the_daemon() {
    let server = JobServer::start("127.0.0.1:0", 1).expect("server");
    let addr = server.addr().to_string();

    let overlong_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9_000));
    let many_headers = format!(
        "GET /healthz HTTP/1.1\r\n{}\r\n",
        "X-Pad: 1\r\n".repeat(150)
    );
    let cases: Vec<(&str, Vec<u8>, u16)> = vec![
        ("empty request", b"".to_vec(), 400),
        ("garbage start line", b"GARBAGE\r\n\r\n".to_vec(), 400),
        ("binary junk", b"\x00\x01\x02\xff\xfe\r\n\r\n".to_vec(), 400),
        (
            "lowercase method",
            b"get /jobs HTTP/1.1\r\n\r\n".to_vec(),
            400,
        ),
        (
            "header without colon",
            b"GET /jobs HTTP/1.1\r\nNotAHeader\r\n\r\n".to_vec(),
            400,
        ),
        (
            "unparsable content-length",
            b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            400,
        ),
        (
            "gigabyte content-length is refused before allocation",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".to_vec(),
            413,
        ),
        (
            "one past the body cap",
            format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                cdcs_serve::http::MAX_BODY + 1
            )
            .into_bytes(),
            413,
        ),
        (
            "truncated body",
            b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort".to_vec(),
            400,
        ),
        (
            "unknown method on a jobs route",
            b"BREW /jobs HTTP/1.1\r\n\r\n".to_vec(),
            405,
        ),
        ("overlong start line", overlong_target.into_bytes(), 400),
        ("too many headers", many_headers.into_bytes(), 400),
    ];

    for (name, payload, expected) in cases {
        let status = raw_status(&addr, &payload);
        assert_eq!(status, expected, "case {name:?}");
        // The connection thread died cleanly; the daemon still serves.
        healthz_ok(&addr);
    }

    // And after the whole gauntlet, real work still lands.
    let spec = serde_json::to_string(&{
        let mut spec = cdcs_bench::specs::quickstart();
        spec.set_base(cdcs_bench::exp::BaseConfig::SmallTest);
        spec.name = "after_gauntlet".into();
        spec
    })
    .expect("spec serializes");
    let client = cdcs_serve::Client::new(addr);
    let id = client.submit(&spec).expect("daemon still accepts jobs");
    assert_eq!(id, 0, "the gauntlet admitted no jobs");
    let report = server.shutdown_drain();
    assert_eq!(report.panicked_threads, 0);
    assert_eq!(
        report.jobs[0].state,
        cdcs_serve::protocol::JobState::Done,
        "drain finished the queued job: {:?}",
        report.jobs
    );
}

#[test]
fn body_exactly_at_the_cap_is_parsed_not_refused() {
    // Regression guard for an off-by-one at the 413 boundary: a body of
    // exactly MAX_BODY bytes must reach the JSON parser (and fail there
    // as a bad spec, 400 — not 413).
    let server = JobServer::start("127.0.0.1:0", 1).expect("server");
    let addr = server.addr().to_string();
    let body = vec![b'x'; cdcs_serve::http::MAX_BODY];
    let mut payload = format!(
        "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    payload.extend_from_slice(&body);
    assert_eq!(raw_status(&addr, &payload), 400, "parsed, rejected as spec");
    healthz_ok(&addr);
    server.shutdown();
}

//! Cancellation races: `DELETE` concurrent with completion, deadline
//! expiry concurrent with the final cell, and double-cancel. The outcome
//! of a race is legitimately nondeterministic — what must hold on every
//! interleaving is *consistency*: the job lands in exactly one terminal
//! state, the status invariants hold, a report exists iff the state is
//! `Done`, and repeating the losing operation changes nothing.

use cdcs_bench::exp::{BaseConfig, ExperimentSpec, GridSpec, MixEntry, SpecKind};
use cdcs_serve::protocol::{JobState, JobStatus};
use cdcs_serve::{Client, JobServer};
use cdcs_sim::runner::CellRun;
use cdcs_sim::Scheme;
use cdcs_workload::MixSpec;
use std::time::Duration;

fn cells_spec(name: &str, apps: &[&str]) -> ExperimentSpec {
    ExperimentSpec {
        name: name.into(),
        kind: SpecKind::Grid(GridSpec {
            base: BaseConfig::SmallTest,
            schemes: vec![Scheme::cdcs()],
            mixes: apps
                .iter()
                .map(|app| MixEntry::auto(MixSpec::Named(vec![app.to_string()])))
                .collect(),
            seeds: Vec::new(),
            patches: Vec::new(),
            run: CellRun::Steady,
            weighted_speedup: false,
            auto_intra_cell: false,
        }),
    }
}

fn wait_terminal(client: &Client, id: u64) -> JobStatus {
    loop {
        let status = client.status(id).expect("status");
        if status.state.is_terminal() {
            return status;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The race-invariant oracle: whatever won the race, the terminal status
/// must be internally consistent and agree with the report endpoint.
fn assert_consistent(client: &Client, status: &JobStatus, allowed: &[JobState]) {
    assert!(
        allowed.contains(&status.state),
        "unexpected terminal state: {status:?}"
    );
    assert!(status.issued_cells <= status.total_cells, "{status:?}");
    assert!(status.completed_cells <= status.issued_cells, "{status:?}");
    match status.state {
        JobState::Done => {
            assert_eq!(status.completed_cells, status.total_cells, "{status:?}");
            client
                .report(status.id)
                .expect("a Done job must serve its report");
        }
        JobState::Failed => {
            assert!(status.error.is_some(), "{status:?}");
        }
        _ => {
            let err = client
                .report(status.id)
                .expect_err("only Done jobs have reports");
            assert!(err.contains("409"), "unexpected error: {err}");
            assert!(status.error.is_none(), "{status:?}");
        }
    }
    // The terminal state is stable. Cell counters may still tick up —
    // the watchdog is cooperative, so a cell in flight when the deadline
    // fired finishes in the background — but only monotonically, and the
    // state/error verdict never changes.
    std::thread::sleep(Duration::from_millis(30));
    let again = client.status(status.id).expect("status re-read");
    assert_eq!(again.state, status.state, "terminal state flipped");
    assert_eq!(again.error, status.error, "terminal error changed");
    assert!(again.completed_cells >= status.completed_cells, "{again:?}");
    assert!(again.issued_cells >= status.issued_cells, "{again:?}");
    assert!(again.completed_cells <= again.total_cells, "{again:?}");
}

#[test]
fn delete_racing_completion_lands_done_or_cancelled_consistently() {
    let server = JobServer::start("127.0.0.1:0", 2).expect("server");
    let client = Client::new(server.addr().to_string());

    // Sweep the cancel across the job's lifetime: from "before the first
    // claim" to "after everything completed". Every landing spot must
    // produce a consistent terminal state; both outcomes must be
    // reachable across the sweep on any sane scheduler.
    let mut seen = Vec::new();
    for (i, delay_ms) in [0u64, 2, 5, 10, 20, 40, 80, 500].iter().enumerate() {
        let spec = cells_spec(&format!("race_{i}"), &["milc", "omnet", "bzip2"]);
        let id = client
            .submit(&serde_json::to_string(&spec).expect("spec serializes"))
            .expect("submit");
        std::thread::sleep(Duration::from_millis(*delay_ms));
        let at_delete = client.cancel(id).expect("cancel");
        assert!(
            at_delete.state != JobState::Failed,
            "cancel must never fail a job: {at_delete:?}"
        );
        let status = wait_terminal(&client, id);
        assert_consistent(&client, &status, &[JobState::Done, JobState::Cancelled]);
        seen.push(status.state);
    }
    // The 500ms delete lands long after a three-cell SmallTest job is
    // done; the 0ms delete beats the first claim.
    assert!(seen.contains(&JobState::Done), "sweep: {seen:?}");
    assert!(seen.contains(&JobState::Cancelled), "sweep: {seen:?}");
    let report = server.shutdown();
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn deadline_racing_the_final_cell_lands_done_or_expired_consistently() {
    let server = JobServer::start("127.0.0.1:0", 2).expect("server");
    let base = Client::new(server.addr().to_string());

    // Sweep the deadline across a one-cell job's runtime: tight deadlines
    // expire before the cell finishes, generous ones never fire, and the
    // crossover exercises "deadline and final cell complete on the same
    // tick" — the watchdog's expire must finalize a finished job as Done,
    // not clobber it.
    let mut seen = Vec::new();
    for (i, deadline_ms) in [1u64, 5, 20, 60, 150, 2_000, 10_000].iter().enumerate() {
        let client = base.clone().with_deadline_ms(*deadline_ms);
        let spec = cells_spec(&format!("deadline_{i}"), &["milc"]);
        let id = client
            .submit(&serde_json::to_string(&spec).expect("spec serializes"))
            .expect("submit");
        let status = wait_terminal(&client, id);
        assert_consistent(
            &client,
            &status,
            &[JobState::Done, JobState::DeadlineExceeded],
        );
        seen.push(status.state);
    }
    assert_eq!(
        seen.last(),
        Some(&JobState::Done),
        "a 10s deadline never fires on a SmallTest cell: {seen:?}"
    );
    assert!(
        seen.contains(&JobState::DeadlineExceeded),
        "a 1ms deadline beats any cell: {seen:?}"
    );
    let report = server.shutdown();
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn double_cancel_is_idempotent_even_when_concurrent() {
    let server = JobServer::start("127.0.0.1:0", 1).expect("server");
    let client = Client::new(server.addr().to_string());

    let spec = cells_spec(
        "double_cancel",
        &["calculix", "milc", "omnet", "bzip2", "xalancbmk", "ilbdc"],
    );
    let id = client
        .submit(&serde_json::to_string(&spec).expect("spec serializes"))
        .expect("submit");

    // Six concurrent DELETEs for the same job: every one must get a clean
    // status reply, and the job must settle exactly once.
    let hammers: Vec<_> = (0..6)
        .map(|_| {
            let client = client.clone();
            std::thread::spawn(move || client.cancel(id).expect("cancel replies with status"))
        })
        .collect();
    for hammer in hammers {
        let status = hammer.join().expect("cancel thread");
        assert_eq!(status.id, id);
    }
    let status = wait_terminal(&client, id);
    assert_consistent(&client, &status, &[JobState::Done, JobState::Cancelled]);

    // And cancelling a settled job is a no-op that still replies.
    let after = client.cancel(id).expect("cancel after terminal");
    assert_eq!(after.state, status.state, "late cancel changed the state");
    let report = server.shutdown();
    assert_eq!(report.panicked_threads, 0);
}

//! Fleet end-to-end tests: a daemon with **zero local workers** and a
//! fleet of in-process `Runner`s produces reports byte-equal to the
//! in-process artifact — through fleet sizes, runner death, heartbeat
//! loss, and injected `lose_lease` faults — and the consistent-hash ring
//! rebalances by moving only the keys that must move (property-tested).

use cdcs_bench::exp::{BaseConfig, ExperimentSpec, GridSpec, MixEntry, SpecKind};
use cdcs_bench::specs;
use cdcs_serve::http;
use cdcs_serve::protocol::{
    FleetStatus, JobState, LeaseGrant, LeaseResult, PollReply, RegisterReply, RunnerHello,
};
use cdcs_serve::ring::HashRing;
use cdcs_serve::{Client, FleetConfig, JobServer, Runner, ServerConfig};
use cdcs_sim::runner::CellRun;
use cdcs_sim::Scheme;
use cdcs_workload::MixSpec;
use std::time::{Duration, Instant};

fn small(mut spec: ExperimentSpec) -> ExperimentSpec {
    spec.set_base(BaseConfig::SmallTest);
    spec.name = format!("{}_small", spec.name);
    spec
}

fn cells_spec(name: &str, apps: &[&str]) -> ExperimentSpec {
    ExperimentSpec {
        name: name.into(),
        kind: SpecKind::Grid(GridSpec {
            base: BaseConfig::SmallTest,
            schemes: vec![Scheme::cdcs()],
            mixes: apps
                .iter()
                .map(|app| MixEntry::auto(MixSpec::Named(vec![app.to_string()])))
                .collect(),
            seeds: Vec::new(),
            patches: Vec::new(),
            run: CellRun::Steady,
            weighted_speedup: false,
            auto_intra_cell: false,
        }),
    }
}

/// The bytes `spec` produces in process — the fleet must match exactly.
fn expected_bytes(spec: &ExperimentSpec) -> String {
    let report = spec.run().expect("in-process run");
    serde_json::to_string_pretty(&report).expect("report serializes")
}

/// A fleet-only daemon: no local workers, fast lease/runner expiry so
/// failure tests run in test time, optional faults.
fn fleet_server(lease_ttl: Duration, runner_ttl: Duration, fault: &str) -> JobServer {
    let mut config = ServerConfig::new("127.0.0.1:0", 0);
    config.fleet = FleetConfig {
        lease_ttl,
        runner_ttl,
        ..FleetConfig::default()
    };
    if !fault.is_empty() {
        config.faults =
            std::sync::Arc::new(cdcs_serve::faults::FaultPlan::parse(fault).expect("fault spec"));
    }
    JobServer::start_with(config).expect("server")
}

fn fleet_status(addr: &str) -> FleetStatus {
    let response = http::request(addr, "GET", "/fleet", &[], None).expect("GET /fleet");
    assert_eq!(response.status, 200);
    serde_json::from_str(&response.body).expect("fleet status parses")
}

// --- manual (raw-HTTP) runner actions, for the failure-mode tests ------

fn register(addr: &str, name: &str) -> RegisterReply {
    let body = serde_json::to_string(&RunnerHello { name: name.into() }).unwrap();
    let response =
        http::request(addr, "POST", "/fleet/runners", &[], Some(&body)).expect("register");
    assert_eq!(response.status, 201);
    serde_json::from_str(&response.body).expect("register reply parses")
}

fn poll(addr: &str, runner_id: u64) -> Option<LeaseGrant> {
    let path = format!("/fleet/runners/{runner_id}/poll");
    let response = http::request(addr, "POST", &path, &[], Some("{}")).expect("poll");
    assert_eq!(response.status, 200);
    let reply: PollReply = serde_json::from_str(&response.body).expect("poll reply parses");
    reply.lease
}

fn heartbeat_status(addr: &str, lease_id: u64) -> u16 {
    let path = format!("/fleet/leases/{lease_id}/heartbeat");
    http::request(addr, "POST", &path, &[], Some("{}"))
        .expect("heartbeat")
        .status
}

/// Polls until a lease is granted (the job must already be submitted).
fn poll_until_lease(addr: &str, runner_id: u64) -> LeaseGrant {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(lease) = poll(addr, runner_id) {
            return lease;
        }
        assert!(Instant::now() < deadline, "no lease granted within 10s");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn ten_runner_fleet_report_is_byte_equal_to_in_process() {
    let server = fleet_server(Duration::from_millis(2000), Duration::from_secs(20), "");
    let addr = server.addr().to_string();
    let runners: Vec<_> = (0..10)
        .map(|i| Runner::new(addr.clone(), format!("fleet-{i}")).spawn())
        .collect();
    let client = Client::new(addr.clone());

    let spec = small(specs::quickstart());
    let spec_json = serde_json::to_string(&spec).expect("spec serializes");
    let served = client
        .run(&spec_json, Duration::from_millis(25))
        .expect("fleet runs the job to a report");
    assert_eq!(
        served,
        expected_bytes(&spec),
        "10-runner fleet report diverges from the in-process artifact"
    );

    let status = fleet_status(&addr);
    assert_eq!(status.runners.len(), 10, "all runners registered");
    assert!(
        status.completed >= 1,
        "fleet completed the job's units: {status:?}"
    );
    assert_eq!(status.active_leases, 0, "nothing in flight after the job");
    let fleet_completed: usize = status.runners.iter().map(|r| r.completed).sum();
    assert_eq!(fleet_completed, status.completed);
    // The typed client binding (what `cdcs fleet` renders) sees the same
    // snapshot as the raw endpoint.
    let via_client = client.fleet().expect("Client::fleet");
    assert_eq!(via_client, status);

    for handle in runners {
        handle.stop();
    }
    let report = server.shutdown();
    assert_eq!(report.panicked_threads, 0);
}

#[test]
fn runner_killed_mid_job_recovers_via_requeue() {
    // Tight windows so revocation and runner expiry land in test time.
    let server = fleet_server(Duration::from_millis(300), Duration::from_millis(600), "");
    let addr = server.addr().to_string();
    let client = Client::new(addr.clone());

    // The victim registers first (so the ring routes some cells to it),
    // grabs a lease, and then goes silent forever — never a heartbeat,
    // never a result: a kill -9 as the daemon sees it.
    let victim = register(&addr, "victim");
    let spec = cells_spec(
        "requeue_me",
        &["calculix", "milc", "omnet", "bzip2", "xalancbmk", "ilbdc"],
    );
    let id = client
        .submit(&serde_json::to_string(&spec).unwrap())
        .expect("submit");
    let lease = poll_until_lease(&addr, victim.runner_id);
    assert!(lease.cell.is_some(), "grid job leases cells");

    // Two healthy runners carry the job — including the victim's cell
    // once its lease (and then the victim itself) is revoked.
    let good: Vec<_> = (0..2)
        .map(|i| Runner::new(addr.clone(), format!("good-{i}")).spawn())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(id).expect("status");
        if status.state == JobState::Done {
            break;
        }
        assert!(
            !status.state.is_terminal(),
            "job ended {:?}: {:?}",
            status.state,
            status.error
        );
        assert!(Instant::now() < deadline, "job not done within 60s");
        std::thread::sleep(Duration::from_millis(25));
    }

    let served = client.report(id).expect("report");
    assert_eq!(
        served,
        expected_bytes(&spec),
        "report after a runner kill diverges from the in-process artifact"
    );
    let status = fleet_status(&addr);
    assert!(
        status.requeued >= 1,
        "the victim's lease must have re-queued: {status:?}"
    );
    assert!(
        status.runners.iter().all(|r| !r.name.contains("victim")),
        "the silent victim must have been expired: {status:?}"
    );

    for handle in good {
        handle.stop();
    }
    server.shutdown();
}

#[test]
fn heartbeat_loss_revokes_the_lease_and_discards_the_late_result() {
    let server = fleet_server(Duration::from_millis(250), Duration::from_secs(20), "");
    let addr = server.addr().to_string();
    let client = Client::new(addr.clone());

    let me = register(&addr, "slowpoke");
    let spec = cells_spec("hb_loss", &["calculix", "milc"]);
    let id = client
        .submit(&serde_json::to_string(&spec).unwrap())
        .expect("submit");
    let lease = poll_until_lease(&addr, me.runner_id);

    // Beat once inside the window — still alive.
    assert_eq!(heartbeat_status(&addr, lease.lease_id), 200);
    // Go silent past the TTL: the watchdog revokes and re-queues.
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(
        heartbeat_status(&addr, lease.lease_id),
        410,
        "a lapsed lease answers Gone"
    );
    // The late result is stale and must be discarded.
    let late = LeaseResult {
        err: Some("late result from a revoked lease".into()),
        ..LeaseResult::default()
    };
    let response = http::request(
        &addr,
        "POST",
        &format!("/fleet/leases/{}/result", lease.lease_id),
        &[],
        Some(&serde_json::to_string(&late).unwrap()),
    )
    .expect("late result post");
    assert_eq!(response.status, 410, "stale results answer Gone");

    // A healthy runner finishes the job; the discarded fake "result"
    // must leave no trace in the bytes.
    let good = Runner::new(addr.clone(), "good").spawn();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(id).expect("status");
        if status.state == JobState::Done {
            break;
        }
        assert!(
            !status.state.is_terminal(),
            "job ended {:?}: {:?}",
            status.state,
            status.error
        );
        assert!(Instant::now() < deadline, "job not done within 60s");
        std::thread::sleep(Duration::from_millis(25));
    }
    let served = client.report(id).expect("report");
    assert_eq!(served, expected_bytes(&spec));
    let status = fleet_status(&addr);
    assert!(status.requeued >= 1, "revocation counted: {status:?}");

    good.stop();
    server.shutdown();
}

#[test]
fn lose_lease_fault_requeues_and_report_stays_byte_equal() {
    let server = fleet_server(
        Duration::from_millis(2000),
        Duration::from_secs(20),
        "lose_lease:2",
    );
    let addr = server.addr().to_string();
    let runners: Vec<_> = (0..3)
        .map(|i| Runner::new(addr.clone(), format!("faulted-{i}")).spawn())
        .collect();
    let client = Client::new(addr.clone());

    let spec = cells_spec(
        "lose_lease",
        &["calculix", "milc", "omnet", "bzip2", "xalancbmk"],
    );
    let served = client
        .run(
            &serde_json::to_string(&spec).unwrap(),
            Duration::from_millis(25),
        )
        .expect("job survives the injected lost lease");
    assert_eq!(
        served,
        expected_bytes(&spec),
        "report under lose_lease diverges from the in-process artifact"
    );
    let status = fleet_status(&addr);
    assert!(
        status.requeued >= 1,
        "the doomed grant must re-queue cell 2: {status:?}"
    );

    for handle in runners {
        handle.stop();
    }
    let report = server.shutdown();
    assert_eq!(report.panicked_threads, 0);
}

// --- ring rebalance properties ----------------------------------------

mod ring_props {
    use super::HashRing;
    use proptest::prelude::*;

    const VNODES: usize = 16;

    fn build(ids: &[u64], seed: u64) -> HashRing {
        let mut ring = HashRing::new(VNODES, seed);
        for &id in ids {
            ring.add(id);
        }
        ring
    }

    /// 1..=8 distinct member ids, sorted (the vendored proptest has no
    /// set strategy — dedupe a vec).
    fn members() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..500, 1..8).prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v
        })
    }

    proptest! {
        /// Adding a node moves a key only if it moves *to* that node;
        /// removing it restores the exact previous routing. This is the
        /// consistent-hashing contract: membership changes touch only
        /// the joining/leaving node's key range.
        #[test]
        fn rebalance_moves_only_the_joining_nodes_range(
            ids in members(),
            seed in 0u64..u64::MAX,
            newcomer in 1000u64..2000,
        ) {
            let mut ring = build(&ids, seed);
            let keys: Vec<u64> = (0..512).collect();
            let before: Vec<u64> = keys.iter().map(|&k| ring.route(k).unwrap()).collect();

            ring.add(newcomer);
            for (&key, &was) in keys.iter().zip(&before) {
                let now = ring.route(key).unwrap();
                prop_assert!(
                    now == was || now == newcomer,
                    "key {key} moved {was} -> {now}, not to the newcomer {newcomer}"
                );
            }

            ring.remove(newcomer);
            for (&key, &was) in keys.iter().zip(&before) {
                prop_assert_eq!(ring.route(key).unwrap(), was, "key {key} did not move back");
            }
        }

        /// Routing is a pure function of the membership *set* — never of
        /// insertion order.
        #[test]
        fn routing_ignores_insertion_order(
            ids in members(),
            seed in 0u64..u64::MAX,
        ) {
            let forward: Vec<u64> = ids.clone();
            let mut reversed = forward.clone();
            reversed.reverse();
            let a = build(&forward, seed);
            let b = build(&reversed, seed);
            for key in 0..512u64 {
                prop_assert_eq!(a.route(key), b.route(key), "key {}", key);
            }
        }

        /// Removing a node moves only the keys that node owned.
        #[test]
        fn removal_moves_only_the_leavers_range(
            ids in members(),
            seed in 0u64..u64::MAX,
        ) {
            prop_assume!(ids.len() >= 2);
            let leaver = ids[0];
            let mut ring = build(&ids, seed);
            let keys: Vec<u64> = (0..512).collect();
            let before: Vec<u64> = keys.iter().map(|&k| ring.route(k).unwrap()).collect();
            ring.remove(leaver);
            for (&key, &was) in keys.iter().zip(&before) {
                let now = ring.route(key).unwrap();
                if was != leaver {
                    prop_assert_eq!(now, was, "key {} was not the leaver's but moved", key);
                } else {
                    prop_assert_ne!(now, leaver, "key {} still routes to the leaver", key);
                }
            }
        }
    }
}

//! Admission control: per-tenant token buckets and a queue-depth cap.
//!
//! Submission is the only way work enters the daemon, so it is the one
//! place overload must become a *bounded, observable* state instead of an
//! unbounded queue (DistCache's framing): every `POST /jobs` passes
//! through [`Admission::admit`], which charges one token from the
//! caller's tenant bucket (tenant id from the `X-Tenant` header, the
//! default tenant otherwise) and checks the active-job queue depth. A
//! refusal carries a retry hint that the HTTP layer surfaces as
//! `429 Too Many Requests` + `Retry-After`, and the `cdcs` client honors.
//!
//! Buckets refill continuously at `rate` tokens/second up to `burst`, so
//! a greedy tenant exhausts only its own credit: the quiet tenant's
//! bucket is untouched and its submissions keep landing (pinned by the
//! tenant-isolation e2e test).

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The tenant used when a request carries no `X-Tenant` header.
pub const DEFAULT_TENANT: &str = "default";

/// Why a submission was refused, plus when to try again.
#[derive(Debug, Clone, PartialEq)]
pub struct Refusal {
    /// Human-readable reason (`tenant "x" is out of credits`, ...).
    pub reason: String,
    /// Suggested wait before retrying.
    pub retry_after: Duration,
}

/// Per-tenant token-bucket rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLimit {
    /// Bucket capacity: how many submissions a tenant may burst.
    pub burst: f64,
    /// Refill rate, tokens per second.
    pub rate: f64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The daemon's admission gate. `None` limits admit everything — the
/// default, so an unconfigured daemon behaves exactly as before.
#[derive(Debug, Default)]
pub struct Admission {
    /// Per-tenant rate limit, when configured.
    limit: Option<TenantLimit>,
    /// Cap on jobs that are queued or running, when configured.
    queue_cap: Option<usize>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl Admission {
    /// An admission gate with the given knobs.
    pub fn new(limit: Option<TenantLimit>, queue_cap: Option<usize>) -> Admission {
        Admission {
            limit,
            queue_cap,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admits or refuses one submission from `tenant` while `active_jobs`
    /// jobs are queued or running.
    ///
    /// # Errors
    ///
    /// Returns the refusal (reason + retry hint). The queue check runs
    /// first and does not charge the tenant's bucket — a full queue is
    /// the machine's fault, not the tenant's.
    pub fn admit(&self, tenant: &str, active_jobs: usize) -> Result<(), Refusal> {
        if let Some(cap) = self.queue_cap {
            if active_jobs >= cap {
                return Err(Refusal {
                    reason: format!(
                        "job queue is full ({active_jobs} active jobs, cap {cap}); \
                         wait for a job to finish"
                    ),
                    // No completion signal to predict; suggest a short poll.
                    retry_after: Duration::from_secs(1),
                });
            }
        }
        let Some(limit) = self.limit else {
            return Ok(());
        };
        let mut buckets = self.buckets.lock().unwrap_or_else(PoisonError::into_inner);
        let now = Instant::now();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: limit.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * limit.rate).min(limit.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            return Ok(());
        }
        let deficit = 1.0 - bucket.tokens;
        let wait = if limit.rate > 0.0 {
            Duration::from_secs_f64(deficit / limit.rate)
        } else {
            Duration::from_secs(60)
        };
        Err(Refusal {
            reason: format!(
                "tenant {tenant:?} is out of submission credits \
                 (burst {}, {}/s); retry after {:.1}s",
                limit.burst,
                limit.rate,
                wait.as_secs_f64()
            ),
            retry_after: wait,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_gate_admits_everything() {
        let gate = Admission::default();
        for i in 0..100 {
            gate.admit("anyone", i).expect("no limits configured");
        }
    }

    #[test]
    fn queue_cap_refuses_with_a_retry_hint() {
        let gate = Admission::new(None, Some(2));
        gate.admit("t", 0).unwrap();
        gate.admit("t", 1).unwrap();
        let refusal = gate.admit("t", 2).expect_err("queue full");
        assert!(refusal.reason.contains("queue is full"), "{refusal:?}");
        assert!(refusal.retry_after > Duration::ZERO);
    }

    #[test]
    fn greedy_tenant_cannot_drain_a_quiet_tenants_bucket() {
        let limit = TenantLimit {
            burst: 2.0,
            // Refill so slow the test window cannot restore a token.
            rate: 0.001,
        };
        let gate = Admission::new(Some(limit), None);
        gate.admit("greedy", 0).unwrap();
        gate.admit("greedy", 0).unwrap();
        let refusal = gate.admit("greedy", 0).expect_err("burst spent");
        assert!(refusal.reason.contains("greedy"), "{refusal:?}");
        assert!(refusal.retry_after >= Duration::from_secs(60 * 10));
        // The quiet tenant's bucket is untouched.
        gate.admit("quiet", 0).expect("quiet tenant admitted");
    }

    #[test]
    fn buckets_refill_over_time() {
        let limit = TenantLimit {
            burst: 1.0,
            rate: 200.0, // a token every 5ms
        };
        let gate = Admission::new(Some(limit), None);
        gate.admit("t", 0).unwrap();
        let refusal = gate.admit("t", 0).expect_err("bucket empty");
        assert!(refusal.retry_after <= Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(20));
        gate.admit("t", 0).expect("refilled");
    }
}

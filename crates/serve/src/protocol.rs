//! The daemon's JSON wire types.
//!
//! Job *inputs* are plain [`cdcs_bench::exp::ExperimentSpec`] JSON (the
//! same bytes `specs/quickstart.json` holds and the round-trip golden test
//! pins); job *reports* are [`cdcs_bench::exp::ExperimentReport`] JSON,
//! byte-equal to the `out/` artifact the same spec produces in process.
//! This module only adds the thin envelope around them: job status,
//! submission replies, and errors.

use serde::{Deserialize, Serialize};

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted; no cell has started yet.
    Queued,
    /// At least one cell has been claimed by the pool.
    Running,
    /// Finished; the report is available.
    Done,
    /// Cancelled before every cell ran; no report.
    Cancelled,
    /// The job's deadline passed before it finished; no report.
    DeadlineExceeded,
    /// A cell (or the report serialization) failed; no report.
    Failed,
}

impl JobState {
    /// Whether the state is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job's live status (`GET /jobs/<id>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub id: u64,
    /// The submitted spec's name (`out/<name>.json` artifact name).
    pub name: String,
    /// The submitting tenant (`X-Tenant` header; `"default"` otherwise).
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Total cells in the job's grid (1 for analysis specs).
    pub total_cells: usize,
    /// Cells claimed by the pool so far (running or finished).
    pub issued_cells: usize,
    /// Cells finished so far.
    pub completed_cells: usize,
    /// The failure message, when `state` is `Failed`.
    pub error: Option<String>,
}

/// Reply to `POST /jobs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitReply {
    /// The new job's id (poll `GET /jobs/<id>`).
    pub id: u64,
}

/// Reply to `GET /jobs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobList {
    /// Every job the daemon has accepted, in submission order.
    pub jobs: Vec<JobStatus>,
}

/// Error envelope for non-2xx replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// What went wrong.
    pub error: String,
}

// ---------------------------------------------------------------------------
// Fleet wire types. Every field is `#[serde(default)]` so a version-skewed
// runner and daemon parse each other leniently (the golden-coupling lint
// pins this); enums are avoided in favor of flat `Option` fields for the
// same reason.
// ---------------------------------------------------------------------------

/// Body of `POST /fleet/runners` — a runner introducing itself.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunnerHello {
    /// Free-form runner name (host, pid, ...) for observability.
    #[serde(default)]
    pub name: String,
}

/// Reply to registration: the runner's identity plus the protocol knobs
/// it must honor.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegisterReply {
    /// Server-assigned runner id (also its consistent-hash ring identity).
    #[serde(default)]
    pub runner_id: u64,
    /// Heartbeat window: a lease unbeaten for this long is revoked.
    #[serde(default)]
    pub lease_ttl_ms: u64,
    /// Suggested idle poll interval.
    #[serde(default)]
    pub poll_ms: u64,
}

/// Reply to `POST /fleet/runners/<id>/poll`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PollReply {
    /// The granted lease, or `None` when no work routed here right now.
    #[serde(default)]
    pub lease: Option<LeaseGrant>,
}

/// One leased unit of work. Exactly one of `cell` / `spec` is populated:
/// a grid-cell lease carries `(config, cell)` (the runner calls
/// `run_cell`), an analysis lease carries the whole `spec` (the runner
/// calls `spec.run()`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LeaseGrant {
    /// Lease id — heartbeats and the result POST reference it.
    #[serde(default)]
    pub lease_id: u64,
    /// The job this unit belongs to.
    #[serde(default)]
    pub job_id: u64,
    /// Grid-cell index within the job, for cell leases.
    #[serde(default)]
    pub cell_index: Option<usize>,
    /// The session's (pool-clamped) config, for cell leases.
    #[serde(default)]
    pub config: Option<cdcs_sim::SimConfig>,
    /// The cell itself, for cell leases.
    #[serde(default)]
    pub cell: Option<cdcs_sim::runner::GridCell>,
    /// The full spec, for analysis (inline) leases.
    #[serde(default)]
    pub spec: Option<cdcs_bench::exp::ExperimentSpec>,
}

/// Body of `POST /fleet/leases/<id>/result`. Exactly one field is
/// populated: `ok` for a cell's `SimResult`, `report_json` for an
/// analysis lease's pretty-printed report, `err` for either kind's
/// failure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LeaseResult {
    /// A cell lease's result.
    #[serde(default)]
    pub ok: Option<cdcs_sim::SimResult>,
    /// An analysis lease's report, pre-serialized with
    /// `to_string_pretty` (the byte-equality fixpoint).
    #[serde(default)]
    pub report_json: Option<String>,
    /// The failure message, for either kind.
    #[serde(default)]
    pub err: Option<String>,
}

/// Generic acknowledgement (heartbeats, result posts, deregistration).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AckReply {
    /// Whether the referenced lease/runner was still live. `false` means
    /// the lease was revoked (or the runner expired): stop working on it;
    /// its cell is already re-queued.
    #[serde(default)]
    pub ok: bool,
}

/// Reply to `GET /fleet` — fleet-wide observability counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStatus {
    /// Registered runners, in id order.
    #[serde(default)]
    pub runners: Vec<RunnerStatus>,
    /// Leases currently outstanding.
    #[serde(default)]
    pub active_leases: usize,
    /// Units completed by the fleet since startup.
    #[serde(default)]
    pub completed: usize,
    /// Units re-queued by revocations (lost heartbeats, dead runners,
    /// injected `lose_lease` faults) since startup.
    #[serde(default)]
    pub requeued: usize,
}

/// One runner's slice of [`FleetStatus`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunnerStatus {
    /// Runner id.
    #[serde(default)]
    pub id: u64,
    /// The name it registered with.
    #[serde(default)]
    pub name: String,
    /// Leases it currently holds.
    #[serde(default)]
    pub active_leases: usize,
    /// Units it has completed.
    #[serde(default)]
    pub completed: usize,
    /// Units parked in its routing bucket awaiting its next poll.
    #[serde(default)]
    pub bucket_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips() {
        let status = JobStatus {
            id: 3,
            name: "quickstart".into(),
            tenant: "default".into(),
            state: JobState::Running,
            total_cells: 7,
            issued_cells: 4,
            completed_cells: 2,
            error: None,
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: JobStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
        let failed = JobStatus {
            state: JobState::Failed,
            error: Some("boom".into()),
            ..status
        };
        let back: JobStatus =
            serde_json::from_str(&serde_json::to_string(&failed).unwrap()).unwrap();
        assert_eq!(back, failed);
    }

    #[test]
    fn fleet_types_round_trip_and_parse_leniently() {
        let grant = LeaseGrant {
            lease_id: 9,
            job_id: 2,
            cell_index: Some(4),
            config: None,
            cell: None,
            spec: None,
        };
        let reply = PollReply {
            lease: Some(grant.clone()),
        };
        let back: PollReply =
            serde_json::from_str(&serde_json::to_string(&reply).unwrap()).unwrap();
        assert_eq!(back, reply);

        // Lenient parsing: an empty object is every fleet type's default —
        // the version-skew contract the golden-coupling lint pins.
        let empty: PollReply = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, PollReply::default());
        let empty: RegisterReply = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, RegisterReply::default());
        let empty: LeaseResult = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, LeaseResult::default());
        let empty: FleetStatus = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, FleetStatus::default());
    }

    #[test]
    fn terminal_states_are_exactly_the_non_live_ones() {
        for (state, terminal) in [
            (JobState::Queued, false),
            (JobState::Running, false),
            (JobState::Done, true),
            (JobState::Cancelled, true),
            (JobState::DeadlineExceeded, true),
            (JobState::Failed, true),
        ] {
            assert_eq!(state.is_terminal(), terminal, "{state:?}");
            let back: JobState =
                serde_json::from_str(&serde_json::to_string(&state).unwrap()).unwrap();
            assert_eq!(back, state);
        }
    }
}

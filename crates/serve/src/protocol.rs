//! The daemon's JSON wire types.
//!
//! Job *inputs* are plain [`cdcs_bench::exp::ExperimentSpec`] JSON (the
//! same bytes `specs/quickstart.json` holds and the round-trip golden test
//! pins); job *reports* are [`cdcs_bench::exp::ExperimentReport`] JSON,
//! byte-equal to the `out/` artifact the same spec produces in process.
//! This module only adds the thin envelope around them: job status,
//! submission replies, and errors.

use serde::{Deserialize, Serialize};

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted; no cell has started yet.
    Queued,
    /// At least one cell has been claimed by the pool.
    Running,
    /// Finished; the report is available.
    Done,
    /// Cancelled before every cell ran; no report.
    Cancelled,
    /// The job's deadline passed before it finished; no report.
    DeadlineExceeded,
    /// A cell (or the report serialization) failed; no report.
    Failed,
}

impl JobState {
    /// Whether the state is final (no further transitions).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job's live status (`GET /jobs/<id>`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Server-assigned job id.
    pub id: u64,
    /// The submitted spec's name (`out/<name>.json` artifact name).
    pub name: String,
    /// The submitting tenant (`X-Tenant` header; `"default"` otherwise).
    pub tenant: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Total cells in the job's grid (1 for analysis specs).
    pub total_cells: usize,
    /// Cells claimed by the pool so far (running or finished).
    pub issued_cells: usize,
    /// Cells finished so far.
    pub completed_cells: usize,
    /// The failure message, when `state` is `Failed`.
    pub error: Option<String>,
}

/// Reply to `POST /jobs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitReply {
    /// The new job's id (poll `GET /jobs/<id>`).
    pub id: u64,
}

/// Reply to `GET /jobs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobList {
    /// Every job the daemon has accepted, in submission order.
    pub jobs: Vec<JobStatus>,
}

/// Error envelope for non-2xx replies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// What went wrong.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips() {
        let status = JobStatus {
            id: 3,
            name: "quickstart".into(),
            tenant: "default".into(),
            state: JobState::Running,
            total_cells: 7,
            issued_cells: 4,
            completed_cells: 2,
            error: None,
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: JobStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
        let failed = JobStatus {
            state: JobState::Failed,
            error: Some("boom".into()),
            ..status
        };
        let back: JobStatus =
            serde_json::from_str(&serde_json::to_string(&failed).unwrap()).unwrap();
        assert_eq!(back, failed);
    }

    #[test]
    fn terminal_states_are_exactly_the_non_live_ones() {
        for (state, terminal) in [
            (JobState::Queued, false),
            (JobState::Running, false),
            (JobState::Done, true),
            (JobState::Cancelled, true),
            (JobState::DeadlineExceeded, true),
            (JobState::Failed, true),
        ] {
            assert_eq!(state.is_terminal(), terminal, "{state:?}");
            let back: JobState =
                serde_json::from_str(&serde_json::to_string(&state).unwrap()).unwrap();
            assert_eq!(back, state);
        }
    }
}

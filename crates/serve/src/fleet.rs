//! Fleet coordination: runners, leases, and consistent-hash routing.
//!
//! The daemon's scheduler already claims cells one at a time from job
//! sessions — this module turns that claim point into a *worker
//! protocol*. A [`Fleet`] tracks registered runners, grants each poll one
//! leased [`WorkUnit`] (routed by a seeded [`HashRing`] so every unit has
//! one deterministic owner shard), and revokes leases whose heartbeats
//! stop — re-queueing the unit through the session seam so a dead runner
//! costs only its in-flight cells. Results flow back through
//! [`Fleet::result`], which is exactly-once by construction: the lease
//! table is consulted and cleared under the fleet's single mutex, so a
//! revoked lease's late result is detectably stale and dropped.
//!
//! Routing: a poll first drains the runner's own *bucket* (units claimed
//! earlier that the ring routed here), then claims fresh units from the
//! scheduler rotation — fairness-identical to a local pool worker — and
//! either grants them (routed to the poller) or parks them in the owning
//! runner's bucket. Buckets are capped; a claim that would overflow one
//! is un-claimed on the spot (the session re-queues it), bounding
//! head-of-line blocking behind a slow owner. Runner-side death is
//! handled one level up: a runner silent past its TTL leaves the ring
//! and its bucket and leases are re-queued wholesale.
//!
//! None of this can change report bytes: every cell's result derives
//! from `(config, cell)` alone, so *where* a unit runs — and how many
//! times a revoked unit re-runs — is invisible in the artifact. The
//! fleet e2e suite pins byte-equality against the in-process report
//! under fleet sizes, runner kills, and injected `lose_lease` faults.
//!
//! Lock order: `fleet` sits between `jobs` and `rotation` (see
//! `lints::lock_order::ORDER`) — the poll path holds the fleet mutex
//! while claiming from the rotation; nothing acquires `fleet` from
//! inside the scheduler or a job.

use crate::faults::FaultPlan;
use crate::job::{Job, LeasePayload, WorkUnit};
use crate::lease::LeaseTable;
use crate::protocol::{FleetStatus, LeaseGrant, LeaseResult, RegisterReply, RunnerStatus};
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::scheduler::{run_contained, Scheduler};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Units parked per runner bucket before the fleet stops claiming on its
/// behalf: bounds head-of-line blocking behind a slow owner while still
/// letting a healthy fleet pipeline a few units per runner.
const BUCKET_CAP: usize = 4;

/// Fleet knobs (all defaultable; the server wires CLI flags through).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Heartbeat window: a lease unbeaten for this long is revoked.
    pub lease_ttl: Duration,
    /// Liveness window: a runner silent (no poll/beat/result) for this
    /// long is deregistered and its work re-queued.
    pub runner_ttl: Duration,
    /// Virtual nodes per runner on the routing ring.
    pub vnodes: usize,
    /// Ring seed: fixes placement for reproducible routing in tests.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            lease_ttl: Duration::from_secs(5),
            runner_ttl: Duration::from_secs(20),
            vnodes: DEFAULT_VNODES,
            seed: 0xCDC5_F1EE,
        }
    }
}

/// One registered runner.
struct RunnerEntry {
    name: String,
    /// Last poll/heartbeat/result — the liveness clock.
    last_seen: Instant,
    /// Units the ring routed here, awaiting this runner's next poll.
    bucket: VecDeque<(Arc<Job>, WorkUnit)>,
    completed: usize,
}

/// Everything the fleet mutex guards.
struct FleetState {
    runners: BTreeMap<u64, RunnerEntry>,
    ring: HashRing,
    leases: LeaseTable,
    next_runner_id: u64,
    completed: usize,
    requeued: usize,
}

/// The fleet coordinator, owned by the server.
pub struct Fleet {
    fleet: Mutex<FleetState>,
    config: FleetConfig,
    faults: Arc<FaultPlan>,
}

/// Deferred re-queue work, performed after the fleet lock is released.
#[derive(Default)]
struct Deferred {
    requeue: Vec<(Arc<Job>, WorkUnit)>,
    finalize: Vec<Arc<Job>>,
}

impl Deferred {
    /// Applies the deferred actions: units rejoin their sessions and jobs
    /// re-enter the rotation; drained jobs are finalized through the
    /// scheduler's containment boundary. Call **without** the fleet lock.
    fn apply(self, sched: &Scheduler) {
        for (job, unit) in self.requeue {
            job.requeue_unit(unit);
            sched.reenqueue(Arc::clone(&job));
        }
        for job in self.finalize {
            run_contained(&job, None);
        }
    }
}

impl Fleet {
    /// An empty fleet.
    pub fn new(config: FleetConfig, faults: Arc<FaultPlan>) -> Fleet {
        Fleet {
            fleet: Mutex::new(FleetState {
                runners: BTreeMap::new(),
                ring: HashRing::new(config.vnodes, config.seed),
                leases: LeaseTable::new(),
                next_runner_id: 0,
                completed: 0,
                requeued: 0,
            }),
            config,
            faults,
        }
    }

    // The fleet state is only mutated in straight-line code (no user code
    // runs under this lock), so a poisoned guard's data is intact;
    // recovering keeps one panicked thread from wedging every runner.
    fn lock_fleet(&self) -> MutexGuard<'_, FleetState> {
        self.fleet.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a runner: assigns its id, places it on the ring, and
    /// returns the protocol knobs it must honor.
    pub fn register(&self, name: &str) -> RegisterReply {
        let mut state = self.lock_fleet();
        state.next_runner_id += 1;
        let id = state.next_runner_id;
        state.runners.insert(
            id,
            RunnerEntry {
                name: name.to_string(),
                // lint: allow(determinism) — liveness bookkeeping only;
                // no result byte depends on wall-clock reads.
                last_seen: Instant::now(),
                bucket: VecDeque::new(),
                completed: 0,
            },
        );
        state.ring.add(id);
        RegisterReply {
            runner_id: id,
            lease_ttl_ms: self.config.lease_ttl.as_millis() as u64,
            poll_ms: (self.config.lease_ttl.as_millis() as u64 / 5).clamp(10, 500),
        }
    }

    /// Deregisters a runner (graceful exit): removes it from the ring and
    /// re-queues its bucket and outstanding leases. `false` if unknown.
    pub fn deregister(&self, runner: u64, sched: &Scheduler) -> bool {
        let mut deferred = Deferred::default();
        let known = {
            let mut state = self.lock_fleet();
            match state.runners.remove(&runner) {
                Some(entry) => {
                    state.ring.remove(runner);
                    let lost = entry.bucket.len() + state.leases.active_for(runner);
                    state.requeued += lost;
                    deferred.requeue.extend(entry.bucket);
                    deferred.requeue.extend(
                        state
                            .leases
                            .revoke_runner(runner)
                            .into_iter()
                            .map(|l| (l.job, l.unit)),
                    );
                    true
                }
                None => false,
            }
        };
        deferred.apply(sched);
        known
    }

    /// Handles one poll: refreshes the runner's liveness, then grants at
    /// most one lease — from its bucket first, else by claiming fresh
    /// units from the rotation and routing them (see module docs).
    /// `Err` means the runner is unknown (expired or never registered);
    /// it must re-register.
    pub fn poll(&self, runner: u64, sched: &Scheduler) -> Result<Option<LeaseGrant>, String> {
        let mut deferred = Deferred::default();
        let grant = {
            let mut state = self.lock_fleet();
            if !state.runners.contains_key(&runner) {
                return Err(format!("unknown runner {runner}; re-register"));
            }
            touch(&mut state, runner);
            let mut grant = None;
            if let Some((job, unit)) = state
                .runners
                .get_mut(&runner)
                .and_then(|e| e.bucket.pop_front())
            {
                grant = Some(self.grant(&mut state, runner, job, unit, &mut deferred));
            }
            while grant.is_none() {
                let outcome = sched.try_claim_unit();
                deferred.finalize.extend(outcome.drained);
                let Some((job, unit)) = outcome.claimed else {
                    break;
                };
                let owner = state.ring.route(unit_key(job.id, unit)).unwrap_or(runner);
                if owner == runner {
                    grant = Some(self.grant(&mut state, runner, job, unit, &mut deferred));
                } else {
                    let bucket = state
                        .runners
                        .get_mut(&owner)
                        .map(|e| &mut e.bucket)
                        .filter(|b| b.len() < BUCKET_CAP);
                    match bucket {
                        Some(bucket) => bucket.push_back((job, unit)),
                        None => {
                            // Owner's bucket is full (or the owner raced
                            // away): un-claim rather than over-buffer, and
                            // stop scanning — the rotation front is
                            // blocked on that owner draining.
                            deferred.requeue.push((job, unit));
                            break;
                        }
                    }
                }
            }
            grant
        };
        deferred.apply(sched);
        Ok(grant)
    }

    /// Builds the lease grant for one unit. An injected `lose_lease`
    /// fault dooms the grant: the unit is re-queued immediately and the
    /// lease never enters the table, so the runner's heartbeats and
    /// result land stale — the full revocation path, deterministically.
    fn grant(
        &self,
        state: &mut FleetState,
        runner: u64,
        job: Arc<Job>,
        unit: WorkUnit,
        deferred: &mut Deferred,
    ) -> LeaseGrant {
        let doomed = matches!(unit, WorkUnit::Cell(i) if self.faults.on_lease(i));
        let lease_id = state.leases.grant(runner, Arc::clone(&job), unit);
        if doomed {
            state.leases.complete(lease_id);
            state.requeued += 1;
            deferred.requeue.push((Arc::clone(&job), unit));
        }
        let mut grant = LeaseGrant {
            lease_id,
            job_id: job.id,
            ..LeaseGrant::default()
        };
        match job.lease_payload(unit) {
            LeasePayload::Cell(config, cell) => {
                if let WorkUnit::Cell(i) = unit {
                    grant.cell_index = Some(i);
                }
                grant.config = Some(config);
                grant.cell = Some(*cell);
            }
            LeasePayload::Spec(spec) => grant.spec = Some(spec),
        }
        grant
    }

    /// Records a heartbeat. `false` means the lease is gone (revoked or
    /// completed): the runner should abandon the work.
    pub fn heartbeat(&self, lease_id: u64) -> bool {
        let mut state = self.lock_fleet();
        state.leases.beat(lease_id)
    }

    /// Accepts a lease's result. `false` means the lease was already
    /// revoked — the result is stale and discarded (its unit re-queued,
    /// possibly already re-run; byte-equal either way).
    pub fn result(&self, lease_id: u64, body: LeaseResult) -> bool {
        let lease = {
            let mut state = self.lock_fleet();
            let lease = state.leases.complete(lease_id);
            if let Some(lease) = &lease {
                state.completed += 1;
                touch(&mut state, lease.runner);
                if let Some(entry) = state.runners.get_mut(&lease.runner) {
                    entry.completed += 1;
                }
            }
            lease
        };
        let Some(lease) = lease else { return false };
        match lease.unit {
            WorkUnit::Cell(i) => {
                let result = match (body.ok, body.err) {
                    (Some(result), _) => Ok(result),
                    (None, Some(err)) => Err(err),
                    (None, None) => Err("runner returned an empty result".into()),
                };
                lease.job.deliver_cell(i, result);
            }
            WorkUnit::Inline => {
                let outcome = match (body.report_json, body.err) {
                    (Some(json), _) => Ok(json),
                    (None, Some(err)) => Err(err),
                    (None, None) => Err("runner returned an empty result".into()),
                };
                lease.job.deliver_inline(outcome);
            }
        }
        run_contained(&lease.job, None);
        true
    }

    /// One watchdog tick: revokes leases past the heartbeat window and
    /// expires runners silent past the liveness window, re-queueing
    /// everything they held.
    pub fn tick(&self, sched: &Scheduler) {
        let mut deferred = Deferred::default();
        {
            let mut state = self.lock_fleet();
            let revoked = state.leases.revoke_expired(self.config.lease_ttl);
            state.requeued += revoked.len();
            deferred
                .requeue
                .extend(revoked.into_iter().map(|l| (l.job, l.unit)));
            let dead: Vec<u64> = state
                .runners
                .iter()
                .filter(|(_, e)| e.last_seen.elapsed() > self.config.runner_ttl)
                .map(|(id, _)| *id)
                .collect();
            for id in dead {
                if let Some(entry) = state.runners.remove(&id) {
                    state.ring.remove(id);
                    let lost = entry.bucket.len() + state.leases.active_for(id);
                    state.requeued += lost;
                    deferred.requeue.extend(entry.bucket);
                    deferred.requeue.extend(
                        state
                            .leases
                            .revoke_runner(id)
                            .into_iter()
                            .map(|l| (l.job, l.unit)),
                    );
                }
            }
        }
        deferred.apply(sched);
    }

    /// Fleet-wide observability counters.
    pub fn status(&self) -> FleetStatus {
        let state = self.lock_fleet();
        FleetStatus {
            runners: state
                .runners
                .iter()
                .map(|(id, entry)| RunnerStatus {
                    id: *id,
                    name: entry.name.clone(),
                    active_leases: state.leases.active_for(*id),
                    completed: entry.completed,
                    bucket_depth: entry.bucket.len(),
                })
                .collect(),
            active_leases: state.leases.active(),
            completed: state.completed,
            requeued: state.requeued,
        }
    }
}

/// Refreshes a runner's liveness clock.
fn touch(state: &mut FleetState, runner: u64) {
    if let Some(entry) = state.runners.get_mut(&runner) {
        // lint: allow(determinism) — liveness bookkeeping only.
        entry.last_seen = Instant::now();
    }
}

/// The ring key for one unit of one job: full-width mix of job id and
/// cell index (inline units use a sentinel index), so consecutive cells
/// of one job spread across the whole fleet.
fn unit_key(job_id: u64, unit: WorkUnit) -> u64 {
    let index = match unit {
        WorkUnit::Cell(i) => i as u64,
        WorkUnit::Inline => u64::MAX,
    };
    job_id.rotate_left(32) ^ index
}

//! Client-side bindings for the daemon's protocol (used by the `cdcs`
//! binary and the end-to-end tests).
//!
//! The client is built for a daemon that is allowed to degrade: every
//! call retries transient transport failures (refused/dropped/garbled
//! connections, truncated responses) with bounded exponential backoff
//! plus jitter, honors `Retry-After` on `429`/`503`, and
//! [`Client::run`] survives a daemon *restart* by resubmitting its spec
//! when the job id it was polling no longer exists.

use crate::http;
use crate::protocol::{ErrorReply, FleetStatus, JobList, JobState, JobStatus, SubmitReply};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Bounded exponential backoff for transient failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base: Duration,
    /// Upper bound on a single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: every transient failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The jittered sleep after `failures` consecutive failures
    /// (1-based) — the runner loop's backoff between reconnect attempts.
    pub fn sleep_for(&self, failures: u32) -> Duration {
        self.backoff(failures.saturating_sub(1))
    }

    /// The backoff before attempt `attempt + 1` (0-based), jittered to
    /// 50–100% of the exponential step so synchronized clients spread out.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        exp.mul_f64(0.5 + 0.5 * jitter_unit())
    }
}

/// A cheap source of jitter in `[0, 1)` — no RNG dependency; the clock's
/// sub-millisecond noise is plenty to de-synchronize retry storms.
fn jitter_unit() -> f64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    f64::from(nanos % 1024) / 1024.0
}

/// A handle to one daemon.
#[derive(Debug, Clone)]
pub struct Client {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Tenant id sent as `X-Tenant` (the daemon's admission control
    /// charges this tenant's bucket).
    pub tenant: Option<String>,
    /// Per-job deadline sent as `X-Deadline-Ms` on submissions.
    pub deadline_ms: Option<u64>,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`), with default
    /// retries, no tenant, and no deadline.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            tenant: None,
            deadline_ms: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the tenant id sent with every request.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Client {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the per-job deadline attached to submissions.
    pub fn with_deadline_ms(mut self, ms: u64) -> Client {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// Submits a spec (raw [`cdcs_bench::exp::ExperimentSpec`] JSON) and
    /// returns the job id.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn submit(&self, spec_json: &str) -> Result<u64, String> {
        let body = self.call("POST", "/jobs", Some(spec_json))?;
        let reply: SubmitReply =
            serde_json::from_str(&body).map_err(|e| format!("parsing submit reply: {e}"))?;
        Ok(reply.id)
    }

    /// One job's live status.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        let body = self.call("GET", &format!("/jobs/{id}"), None)?;
        serde_json::from_str(&body).map_err(|e| format!("parsing status: {e}"))
    }

    /// Every job's status.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn list(&self) -> Result<Vec<JobStatus>, String> {
        let body = self.call("GET", "/jobs", None)?;
        let list: JobList =
            serde_json::from_str(&body).map_err(|e| format!("parsing job list: {e}"))?;
        Ok(list.jobs)
    }

    /// The finished report's JSON (byte-equal to the `out/` artifact).
    ///
    /// # Errors
    ///
    /// Returns transport errors, `409` while the job is unfinished, and
    /// other server-side rejections.
    pub fn report(&self, id: u64) -> Result<String, String> {
        self.call("GET", &format!("/jobs/{id}/report"), None)
    }

    /// The remote-runner fleet's live status (runners, routing buckets,
    /// outstanding leases, lifetime completed/requeued counts).
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn fleet(&self) -> Result<FleetStatus, String> {
        let body = self.call("GET", "/fleet", None)?;
        serde_json::from_str(&body).map_err(|e| format!("parsing fleet status: {e}"))
    }

    /// Cancels a job and returns its status.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let body = self.call("DELETE", &format!("/jobs/{id}"), None)?;
        serde_json::from_str(&body).map_err(|e| format!("parsing status: {e}"))
    }

    /// Submits a spec, polls until it reaches a terminal state, and
    /// returns the report JSON. If the daemon restarts mid-run (the
    /// polled job id stops existing), the spec is resubmitted — bounded,
    /// and invisible to the caller beyond added latency.
    ///
    /// # Errors
    ///
    /// Returns transport errors and a description when the job ends
    /// cancelled, expired, or failed.
    pub fn run(&self, spec_json: &str, poll: Duration) -> Result<String, String> {
        let mut id = self.submit(spec_json)?;
        let mut resubmits_left = 3u32;
        loop {
            let status = match self.status(id) {
                Ok(status) => status,
                // `call` formats server-side rejections as "HTTP <code>:".
                // A 404 for a job we created means the daemon lost its
                // state (restart): resubmit rather than surface it.
                Err(e) if e.contains("HTTP 404:") && resubmits_left > 0 => {
                    resubmits_left -= 1;
                    id = self.submit(spec_json)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            match status.state {
                JobState::Done => return self.report(id),
                JobState::Cancelled => return Err(format!("job {id} was cancelled")),
                JobState::DeadlineExceeded => {
                    return Err(format!("job {id} exceeded its deadline"))
                }
                JobState::Failed => {
                    return Err(format!(
                        "job {id} failed: {}",
                        status.error.unwrap_or_else(|| "unknown error".into())
                    ))
                }
                JobState::Queued | JobState::Running => std::thread::sleep(poll),
            }
        }
    }

    fn call(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
        let mut headers: Vec<(&str, String)> = Vec::new();
        if let Some(tenant) = &self.tenant {
            headers.push(("X-Tenant", tenant.clone()));
        }
        if method == "POST" {
            if let Some(ms) = self.deadline_ms {
                headers.push(("X-Deadline-Ms", ms.to_string()));
            }
        }
        let mut attempt = 0u32;
        loop {
            let transient = match http::request(&self.addr, method, path, &headers, body) {
                Ok(response) if (200..300).contains(&response.status) => return Ok(response.body),
                // Overload and shutdown windows are retryable; honor the
                // server's Retry-After hint when it gives one.
                Ok(response) if response.status == 429 || response.status == 503 => {
                    let hint = response
                        .header("retry-after")
                        .and_then(|v| v.parse::<f64>().ok())
                        .map(Duration::from_secs_f64);
                    let detail = error_detail(&response.body);
                    (
                        format!("{method} {path}: HTTP {}: {detail}", response.status),
                        hint,
                    )
                }
                Ok(response) => {
                    let detail = error_detail(&response.body);
                    return Err(format!(
                        "{method} {path}: HTTP {}: {detail}",
                        response.status
                    ));
                }
                // Transport-level failure (refused, reset, dropped,
                // garbled): transient by definition.
                Err(e) => (format!("{method} {path}: {e}"), None),
            };
            let (error, hint) = transient;
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Err(format!("{error} (after {attempt} attempts)"));
            }
            std::thread::sleep(hint.unwrap_or_else(|| self.retry.backoff(attempt - 1)));
        }
    }
}

/// Prefers the server's structured error message when present.
fn error_detail(body: &str) -> String {
    serde_json::from_str::<ErrorReply>(body)
        .map(|e| e.error)
        .unwrap_or_else(|_| body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(1),
        };
        let mut prev_max = Duration::ZERO;
        for attempt in 0..8 {
            let sleep = policy.backoff(attempt);
            let unjittered = policy.base.saturating_mul(1u32 << attempt).min(policy.cap);
            assert!(sleep <= unjittered, "attempt {attempt}: {sleep:?}");
            assert!(
                sleep >= unjittered.mul_f64(0.5),
                "attempt {attempt}: {sleep:?} under half of {unjittered:?}"
            );
            assert!(unjittered >= prev_max, "monotone until the cap");
            prev_max = unjittered;
        }
        assert!(
            policy.backoff(30) <= policy.cap,
            "deep attempts stay capped without overflow"
        );
    }

    #[test]
    fn no_retry_policy_fails_on_first_transient_error() {
        // Nothing listens on this port (bound, never accepted-from
        // quickly enough? — simpler: a port from the reserved test range
        // with no listener at all).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener); // now refused
        let client = Client::new(addr).with_retry(RetryPolicy::none());
        let before = std::time::Instant::now();
        let err = client.status(0).expect_err("nothing listening");
        assert!(err.contains("after 1 attempts"), "{err}");
        assert!(
            before.elapsed() < Duration::from_secs(2),
            "no backoff slept"
        );
    }
}

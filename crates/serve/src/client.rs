//! Client-side bindings for the daemon's protocol (used by the `cdcs`
//! binary and the end-to-end tests).

use crate::http;
use crate::protocol::{ErrorReply, JobList, JobState, JobStatus, SubmitReply};
use std::time::Duration;

/// A handle to one daemon.
#[derive(Debug, Clone)]
pub struct Client {
    /// `host:port` of the daemon.
    pub addr: String,
}

impl Client {
    /// A client for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// Submits a spec (raw [`cdcs_bench::exp::ExperimentSpec`] JSON) and
    /// returns the job id.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn submit(&self, spec_json: &str) -> Result<u64, String> {
        let body = self.call("POST", "/jobs", Some(spec_json))?;
        let reply: SubmitReply =
            serde_json::from_str(&body).map_err(|e| format!("parsing submit reply: {e}"))?;
        Ok(reply.id)
    }

    /// One job's live status.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn status(&self, id: u64) -> Result<JobStatus, String> {
        let body = self.call("GET", &format!("/jobs/{id}"), None)?;
        serde_json::from_str(&body).map_err(|e| format!("parsing status: {e}"))
    }

    /// Every job's status.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn list(&self) -> Result<Vec<JobStatus>, String> {
        let body = self.call("GET", "/jobs", None)?;
        let list: JobList =
            serde_json::from_str(&body).map_err(|e| format!("parsing job list: {e}"))?;
        Ok(list.jobs)
    }

    /// The finished report's JSON (byte-equal to the `out/` artifact).
    ///
    /// # Errors
    ///
    /// Returns transport errors, `409` while the job is unfinished, and
    /// other server-side rejections.
    pub fn report(&self, id: u64) -> Result<String, String> {
        self.call("GET", &format!("/jobs/{id}/report"), None)
    }

    /// Cancels a job and returns its status.
    ///
    /// # Errors
    ///
    /// Returns transport errors and server-side rejections.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, String> {
        let body = self.call("DELETE", &format!("/jobs/{id}"), None)?;
        serde_json::from_str(&body).map_err(|e| format!("parsing status: {e}"))
    }

    /// Submits a spec, polls until it reaches a terminal state, and
    /// returns the report JSON.
    ///
    /// # Errors
    ///
    /// Returns transport errors and a description when the job ends
    /// cancelled or failed.
    pub fn run(&self, spec_json: &str, poll: Duration) -> Result<String, String> {
        let id = self.submit(spec_json)?;
        loop {
            let status = self.status(id)?;
            match status.state {
                JobState::Done => return self.report(id),
                JobState::Cancelled => return Err(format!("job {id} was cancelled")),
                JobState::Failed => {
                    return Err(format!(
                        "job {id} failed: {}",
                        status.error.unwrap_or_else(|| "unknown error".into())
                    ))
                }
                JobState::Queued | JobState::Running => std::thread::sleep(poll),
            }
        }
    }

    fn call(&self, method: &str, path: &str, body: Option<&str>) -> Result<String, String> {
        let (status, body) = http::request(&self.addr, method, path, body)?;
        if (200..300).contains(&status) {
            return Ok(body);
        }
        // Prefer the server's structured error message when present.
        let detail = serde_json::from_str::<ErrorReply>(&body)
            .map(|e| e.error)
            .unwrap_or(body);
        Err(format!("{method} {path}: HTTP {status}: {detail}"))
    }
}

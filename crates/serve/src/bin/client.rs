//! `cdcs`: the experiment-daemon client.
//!
//! ```sh
//! cdcs submit specs/quickstart.json            # -> job id
//! cdcs status 0                                # live per-cell progress
//! cdcs report 0 --out out/quickstart.json      # finished report (artifact bytes)
//! cdcs cancel 0
//! cdcs run specs/quickstart.json --small       # submit + poll + report
//! cdcs fleet --watch                           # live remote-runner fleet table
//! ```
//!
//! The server defaults to `127.0.0.1:7077`; override with `--server
//! host:port` or the `CDCS_SERVER` environment variable. `--small`
//! rebases a grid spec onto the 4×4 test chip and renames it
//! `<name>_small` — the same convention as the in-process binaries, so a
//! served report stays byte-comparable to `out/<name>_small.json`.
//!
//! Multi-tenant knobs: `--tenant NAME` (or `CDCS_TENANT`) identifies the
//! submitting tenant for the daemon's admission control; `--deadline-ms
//! N` attaches a wall-clock deadline to submitted jobs. Transient
//! failures (connection refused/dropped, `429` + `Retry-After`, daemon
//! restarts mid-`run`) are retried with bounded exponential backoff —
//! tune with `--retries N` (retries after the first attempt).

use cdcs_bench::arg_value_from;
use cdcs_bench::exp::{BaseConfig, ExperimentSpec};
use cdcs_serve::protocol::FleetStatus;
use cdcs_serve::{Client, RetryPolicy};
use std::time::Duration;

fn client(args: &[String]) -> Result<Client, String> {
    let addr = arg_value_from(args, "server")
        .or_else(|| std::env::var("CDCS_SERVER").ok())
        .unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let mut client = Client::new(addr);
    if let Some(tenant) =
        arg_value_from(args, "tenant").or_else(|| std::env::var("CDCS_TENANT").ok())
    {
        client = client.with_tenant(tenant);
    }
    if let Some(raw) = arg_value_from(args, "deadline-ms") {
        let ms = raw
            .parse()
            .map_err(|e| format!("--deadline-ms {raw:?}: {e}"))?;
        client = client.with_deadline_ms(ms);
    }
    if let Some(raw) = arg_value_from(args, "retries") {
        let max_attempts: u32 = raw.parse().map_err(|e| format!("--retries {raw:?}: {e}"))?;
        client = client.with_retry(RetryPolicy {
            max_attempts: max_attempts.saturating_add(1),
            ..RetryPolicy::default()
        });
    }
    Ok(client)
}

/// Reads a spec file, applying the shared `--small` convention.
fn load_spec(args: &[String], path: &str) -> Result<String, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut spec: ExperimentSpec =
        serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    if args.iter().any(|a| a == "--small") {
        spec.set_base(BaseConfig::SmallTest);
        spec.name = format!("{}_small", spec.name);
    }
    serde_json::to_string(&spec).map_err(|e| format!("re-serializing spec: {e}"))
}

fn parse_id(arg: Option<&String>) -> Result<u64, String> {
    let raw = arg.ok_or("missing job id")?;
    raw.parse().map_err(|e| format!("job id {raw:?}: {e}"))
}

/// Prints `report` to stdout, or writes it to `--out FILE`.
fn emit_report(args: &[String], report: &str) -> Result<(), String> {
    match arg_value_from(args, "out") {
        Some(path) => {
            std::fs::write(&path, report).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("[report: {path}]");
            Ok(())
        }
        None => {
            println!("{report}");
            Ok(())
        }
    }
}

/// Renders one fleet snapshot as a runner table plus fleet totals.
fn print_fleet(fleet: &FleetStatus) {
    println!(
        "{:>4}  {:<20} {:>7} {:>10} {:>7}",
        "id", "runner", "leases", "completed", "bucket"
    );
    for r in &fleet.runners {
        println!(
            "{:>4}  {:<20} {:>7} {:>10} {:>7}",
            r.id, r.name, r.active_leases, r.completed, r.bucket_depth
        );
    }
    println!(
        "fleet: {} runner(s), {} active lease(s), {} completed, {} requeued",
        fleet.runners.len(),
        fleet.active_leases,
        fleet.completed,
        fleet.requeued
    );
}

fn usage() -> String {
    "usage: cdcs <submit SPEC.json | status ID | report ID | cancel ID | run SPEC.json | fleet> \
     [--server host:port] [--small] [--out FILE] [--poll-ms N] [--watch] \
     [--tenant NAME] [--deadline-ms N] [--retries N]"
        .to_string()
}

fn main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    let command = args.get(1).map(String::as_str).ok_or_else(usage)?;
    let client = client(&args)?;
    match command {
        "submit" => {
            let path = args.get(2).ok_or_else(usage)?;
            let spec = load_spec(&args, path)?;
            let id = client.submit(&spec)?;
            println!("{id}");
            Ok(())
        }
        "status" => {
            let status = client.status(parse_id(args.get(2))?)?;
            println!(
                "{}",
                serde_json::to_string_pretty(&status)
                    .map_err(|e| format!("serializing status: {e}"))?
            );
            Ok(())
        }
        "report" => {
            let report = client.report(parse_id(args.get(2))?)?;
            emit_report(&args, &report)
        }
        "cancel" => {
            let status = client.cancel(parse_id(args.get(2))?)?;
            println!(
                "{}",
                serde_json::to_string_pretty(&status)
                    .map_err(|e| format!("serializing status: {e}"))?
            );
            Ok(())
        }
        "run" => {
            let path = args.get(2).ok_or_else(usage)?;
            let spec = load_spec(&args, path)?;
            let poll = arg_value_from(&args, "poll-ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(200u64);
            let report = client.run(&spec, Duration::from_millis(poll))?;
            emit_report(&args, &report)
        }
        "fleet" => {
            let poll = arg_value_from(&args, "poll-ms")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1000u64);
            let watch = args.iter().any(|a| a == "--watch");
            loop {
                print_fleet(&client.fleet()?);
                if !watch {
                    return Ok(());
                }
                println!();
                std::thread::sleep(Duration::from_millis(poll));
            }
        }
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    }
}

//! `cdcs-runner`: a fleet worker process.
//!
//! ```sh
//! cdcs-runner --addr 127.0.0.1:7077 --name rack3-17
//! ```
//!
//! Registers with the `cdcs-serve` daemon at `--addr`, then loops:
//! lease a unit of work, execute it (bit-identical to a local worker —
//! same `run_cell` entry point on the shipped `(config, cell)`),
//! heartbeat while working, post the result. Survives daemon restarts
//! by re-registering; a revoked lease (missed heartbeats, injected
//! `lose_lease` fault) is abandoned mid-flight — the daemon has already
//! re-queued the cell. Runs until killed.

use cdcs_bench::arg_value;
use cdcs_serve::Runner;
use std::sync::atomic::AtomicBool;

fn main() {
    let addr = arg_value("addr").unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let name = arg_value("name").unwrap_or_else(|| format!("runner-{}", std::process::id()));
    eprintln!("cdcs-runner {name}: joining fleet at http://{addr}");
    let never_stop = AtomicBool::new(false);
    Runner::new(addr, name).run(&never_stop);
}

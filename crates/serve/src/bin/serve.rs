//! The experiment daemon.
//!
//! ```sh
//! cdcs-serve --addr 127.0.0.1:7077 --workers 4 \
//!            --queue-cap 32 --tenant-burst 8 --tenant-rate 2 \
//!            --cell-timeout-ms 60000
//! ```
//!
//! Accepts `ExperimentSpec` JSON on `POST /jobs`, interleaves cells from
//! concurrent jobs fairly across one shared worker pool, and serves
//! per-cell progress and finished reports (see the `cdcs` client).
//!
//! Hardening knobs (all optional; omitted = permissive):
//!
//! * `--queue-cap N` — refuse submissions (`429` + `Retry-After`) while
//!   `N` jobs are queued or running;
//! * `--tenant-burst B --tenant-rate R` — per-tenant token bucket:
//!   each tenant (`X-Tenant` header) may burst `B` submissions and
//!   refills at `R` per second;
//! * `--cell-timeout-ms MS` — per-cell wall-clock watchdog: a cell
//!   running longer fails its job;
//! * `CDCS_FAULT` / `--fault SPEC` — deterministic fault injection
//!   (`panic_cell:3`, `slow_cell:1:500`, `drop_conn:2`, `garble_conn`,
//!   `lose_lease:2`), for the e2e suites and operational drills.
//!
//! Fleet knobs (see `cdcs-runner` for the worker side):
//!
//! * `--workers 0` — fleet-only mode: no local pool; every cell is
//!   leased to remote runners;
//! * `--lease-ttl-ms MS` — heartbeat window before a lease is revoked
//!   and its cell re-queued (default 5000);
//! * `--runner-ttl-ms MS` — silence window before a runner is expired
//!   and all its work re-queued (default 20000).

use cdcs_bench::arg_value;
use cdcs_serve::admission::TenantLimit;
use cdcs_serve::faults::FaultPlan;
use cdcs_serve::{JobServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn parsed<T: std::str::FromStr>(name: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match arg_value(name) {
        Some(value) => value
            .parse()
            .map(Some)
            .map_err(|e| format!("--{name} {value:?}: {e}")),
        None => Ok(None),
    }
}

fn main() -> Result<(), String> {
    let addr = arg_value("addr").unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let workers = parsed("workers")?.unwrap_or_else(rayon::current_num_threads);
    let mut config = ServerConfig::new(addr, workers);
    config.queue_cap = parsed("queue-cap")?;
    config.cell_timeout = parsed::<u64>("cell-timeout-ms")?.map(Duration::from_millis);
    let burst: Option<f64> = parsed("tenant-burst")?;
    let rate: Option<f64> = parsed("tenant-rate")?;
    config.tenant_limit = match (burst, rate) {
        (None, None) => None,
        // One knob implies the other: default the burst to the rate (one
        // second of credit) and the rate to refilling the burst per minute.
        (burst, rate) => {
            let rate = rate.or(burst).unwrap_or(1.0);
            Some(TenantLimit {
                burst: burst.unwrap_or(rate).max(1.0),
                rate,
            })
        }
    };
    if let Some(ms) = parsed::<u64>("lease-ttl-ms")? {
        config.fleet.lease_ttl = Duration::from_millis(ms.max(1));
    }
    if let Some(ms) = parsed::<u64>("runner-ttl-ms")? {
        config.fleet.runner_ttl = Duration::from_millis(ms.max(1));
    }
    let faults = match arg_value("fault") {
        Some(spec) => FaultPlan::parse(&spec)?,
        None => FaultPlan::from_env()?,
    };
    if !faults.is_empty() {
        eprintln!("cdcs-serve: FAULT INJECTION ACTIVE");
    }
    config.faults = Arc::new(faults);

    let server = JobServer::start_with(config)?;
    eprintln!(
        "cdcs-serve listening on http://{} ({} worker{})",
        server.addr(),
        workers,
        if workers == 1 { "" } else { "s" }
    );
    server.join();
    Ok(())
}

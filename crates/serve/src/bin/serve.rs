//! The experiment daemon.
//!
//! ```sh
//! cdcs-serve --addr 127.0.0.1:7077 --workers 4
//! ```
//!
//! Accepts `ExperimentSpec` JSON on `POST /jobs`, interleaves cells from
//! concurrent jobs fairly across one shared worker pool, and serves
//! per-cell progress and finished reports (see the `cdcs` client).

use cdcs_bench::arg_value;
use cdcs_serve::JobServer;

fn main() -> Result<(), String> {
    let addr = arg_value("addr").unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let workers = match arg_value("workers") {
        Some(value) => value
            .parse()
            .map_err(|e| format!("--workers {value:?}: {e}"))?,
        None => rayon::current_num_threads(),
    };
    let server = JobServer::start(&addr, workers)?;
    eprintln!(
        "cdcs-serve listening on http://{} ({} worker{})",
        server.addr(),
        workers,
        if workers == 1 { "" } else { "s" }
    );
    server.join();
    Ok(())
}

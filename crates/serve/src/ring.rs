//! Consistent-hash ring for routing cells across runner shards.
//!
//! The fleet needs elastic membership: runners come and go, and each
//! change must move only a bounded slice of the key space — never trigger
//! a global reshuffle (DistCache's shard-routing argument). The classic
//! construction does exactly that: every runner owns `vnodes` points on a
//! `u64` ring, and a key routes to the owner of the first point at or
//! clockwise-after the key's hash. Adding a runner steals only the arcs
//! that now end at its points; removing one donates only its own arcs.
//!
//! Placement is **deterministic and insertion-order independent**: points
//! live in a `BTreeMap` keyed by `(point_hash, runner_id)` — the same
//! membership set always produces the identical ring, regardless of the
//! order runners registered, and hash collisions between runners
//! tie-break by id rather than by arrival. The whole ring is seeded so
//! tests can pin exact layouts.
//!
//! Routing never affects report bytes — every cell's result derives from
//! `(config, cell)` alone — so the ring only shapes *where* work runs,
//! and the byte-equality e2e suites hold for any membership history.

use std::collections::BTreeMap;

/// Default virtual nodes per runner: enough to keep per-runner load
/// within a few percent of even for fleets up to a few hundred runners.
pub const DEFAULT_VNODES: usize = 64;

/// SplitMix64 finalizer: a full-avalanche `u64 -> u64` mix, the same
/// construction the workload crate uses for stream seeds.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded consistent-hash ring over `u64` runner ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Virtual nodes per runner.
    vnodes: usize,
    /// Seed folded into every point and key hash.
    seed: u64,
    /// Ring points: `(point_hash, runner_id)` → the composite key makes
    /// iteration order — and therefore routing — independent of insertion
    /// order and deterministic under collisions.
    points: BTreeMap<(u64, u64), ()>,
    /// Member count (points / vnodes, tracked directly for clarity).
    members: usize,
}

impl HashRing {
    /// An empty ring. `vnodes` is clamped to at least 1.
    pub fn new(vnodes: usize, seed: u64) -> Self {
        HashRing {
            vnodes: vnodes.max(1),
            seed,
            points: BTreeMap::new(),
            members: 0,
        }
    }

    /// Number of runners on the ring.
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether the ring has no runners.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// The hash of `runner`'s `vnode`-th point.
    fn point(&self, runner: u64, vnode: usize) -> u64 {
        mix64(self.seed ^ mix64(runner) ^ mix64(vnode as u64 ^ 0xf1ee_7000_0000_0000))
    }

    /// Adds a runner's points. Idempotent: re-adding an existing runner
    /// changes nothing.
    pub fn add(&mut self, runner: u64) {
        if self.contains(runner) {
            return;
        }
        for v in 0..self.vnodes {
            self.points.insert((self.point(runner, v), runner), ());
        }
        self.members += 1;
    }

    /// Removes a runner's points. Idempotent.
    pub fn remove(&mut self, runner: u64) {
        if !self.contains(runner) {
            return;
        }
        for v in 0..self.vnodes {
            self.points.remove(&(self.point(runner, v), runner));
        }
        self.members -= 1;
    }

    /// Whether `runner` is on the ring.
    pub fn contains(&self, runner: u64) -> bool {
        // Any one point identifies membership; vnodes ≥ 1 always.
        self.points.contains_key(&(self.point(runner, 0), runner))
    }

    /// Routes a key to its owning runner: the first ring point at or after
    /// the key's (seeded) hash, wrapping around. `None` on an empty ring.
    pub fn route(&self, key: u64) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let h = mix64(self.seed ^ mix64(key));
        self.points
            .range((h, 0)..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|((_, runner), ())| *runner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_routes_nothing() {
        let ring = HashRing::new(DEFAULT_VNODES, 0);
        assert!(ring.is_empty());
        assert_eq!(ring.route(42), None);
    }

    #[test]
    fn single_runner_owns_everything() {
        let mut ring = HashRing::new(DEFAULT_VNODES, 7);
        ring.add(3);
        for key in 0..1000u64 {
            assert_eq!(ring.route(key), Some(3));
        }
    }

    #[test]
    fn placement_is_insertion_order_independent() {
        let ids = [11u64, 2, 45, 7, 30];
        let mut forward = HashRing::new(DEFAULT_VNODES, 99);
        let mut reverse = HashRing::new(DEFAULT_VNODES, 99);
        for id in ids {
            forward.add(id);
        }
        for id in ids.iter().rev() {
            reverse.add(*id);
        }
        for key in 0..4096u64 {
            assert_eq!(forward.route(key), reverse.route(key), "key {key}");
        }
    }

    #[test]
    fn add_and_remove_are_idempotent_and_inverse() {
        let mut ring = HashRing::new(8, 1);
        ring.add(5);
        ring.add(5);
        assert_eq!(ring.len(), 1);
        ring.add(9);
        assert_eq!(ring.len(), 2);
        let before: Vec<Option<u64>> = (0..256).map(|k| ring.route(k)).collect();
        ring.add(13);
        ring.remove(13);
        ring.remove(13);
        let after: Vec<Option<u64>> = (0..256).map(|k| ring.route(k)).collect();
        assert_eq!(before, after, "add+remove restores the exact layout");
    }

    #[test]
    fn load_spreads_across_runners() {
        let mut ring = HashRing::new(DEFAULT_VNODES, 0xCDC5);
        for id in 0..10u64 {
            ring.add(id);
        }
        let mut counts = [0usize; 10];
        for key in 0..10_000u64 {
            counts[ring.route(key).expect("non-empty") as usize] += 1;
        }
        for (id, n) in counts.iter().enumerate() {
            // 10k keys over 10 runners: each should be within a loose 4x
            // band of the mean — catches catastrophic skew, not variance.
            assert!(
                (250..4000).contains(n),
                "runner {id} owns {n} of 10000 keys"
            );
        }
    }
}

//! A minimal, dependency-free HTTP/1.1 codec over `std::net`.
//!
//! The experiment daemon needs exactly four verbs on a handful of routes
//! and always closes the connection after one exchange, so this is the
//! whole protocol surface: parse one request (start line, headers,
//! `Content-Length` body), write one response, plus the client-side dual.
//! No keep-alive, no chunked encoding, no TLS — the daemon serves trusted
//! lab traffic, not the open internet.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// The request target, e.g. `/jobs/3/report` (query strings are not
    /// used by the protocol and are kept verbatim).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Returns a human-readable message on malformed requests or I/O errors.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut start_line = String::new();
    reader
        .read_line(&mut start_line)
        .map_err(|e| format!("reading request line: {e}"))?;
    let mut parts = start_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts
        .next()
        .ok_or("request line has no target")?
        .to_string();

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad Content-Length: {e}"))?;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    Ok(Request { method, path, body })
}

/// Writes one `Connection: close` response.
///
/// # Errors
///
/// Returns I/O errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> Result<(), String> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("writing response: {e}"))
}

/// Performs one client request against `addr` (`host:port`) and returns
/// `(status code, body)`.
///
/// # Errors
///
/// Returns connection, I/O, and malformed-response errors.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("sending request: {e}"))?;

    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("reading response: {e}"))?;
    let (head, response_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .ok_or("response has no status code")?
        .parse()
        .map_err(|e| format!("bad status code: {e}"))?;
    Ok((status, response_body.to_string()))
}

//! A minimal, dependency-free HTTP/1.1 codec over `std::net`.
//!
//! The experiment daemon needs exactly four verbs on a handful of routes
//! and always closes the connection after one exchange, so this is the
//! whole protocol surface: parse one request (start line, headers,
//! `Content-Length` body), write one response, plus the client-side dual.
//! No keep-alive, no chunked encoding, no TLS.
//!
//! The parser is *total* over hostile input: every malformed byte stream
//! — garbage start lines, oversized heads, bodies bigger than
//! [`MAX_BODY`], truncated bodies, non-UTF-8 — maps to a typed
//! [`RequestError`] the server answers with a 4xx (or drops, for pure
//! I/O failures), never to a panic, an unbounded allocation, or a wedged
//! connection thread.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on an accepted request body. `ExperimentSpec`s are a few
/// KiB; anything close to this is not a spec. Declared lengths above the
/// cap are refused *before* allocating.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Upper bound on one head line (start line or header).
const MAX_LINE: usize = 8 * 1024;

/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 100;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, ...
    pub method: String,
    /// The request target, e.g. `/jobs/3/report` (query strings are not
    /// used by the protocol and are kept verbatim).
    pub path: String,
    /// The request headers, in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The connection failed mid-read (client went away, timeout):
    /// responding is pointless, but attempting to is harmless.
    Io(String),
    /// The bytes are not a well-formed request → `400 Bad Request`.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY`] → `413 Payload Too Large`.
    TooLarge {
        /// The declared `Content-Length`.
        declared: usize,
    },
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Io(e) => write!(f, "{e}"),
            RequestError::Malformed(e) => write!(f, "{e}"),
            RequestError::TooLarge { declared } => {
                write!(
                    f,
                    "body of {declared} bytes exceeds the {MAX_BODY}-byte cap"
                )
            }
        }
    }
}

/// Reads one `\n`-terminated line of at most [`MAX_LINE`] bytes, without
/// trusting the peer to ever send a newline (a plain `read_line` would
/// buffer an unbounded — and non-UTF-8-intolerant — head).
fn read_limited_line(reader: &mut BufReader<&mut TcpStream>) -> Result<String, RequestError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break, // EOF ends the line
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(RequestError::Malformed(format!(
                        "head line exceeds {MAX_LINE} bytes"
                    )));
                }
            }
            Err(e) => return Err(RequestError::Io(format!("reading head: {e}"))),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| RequestError::Malformed("head is not UTF-8".into()))
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// Returns a typed [`RequestError`]; see its variants for the status the
/// server maps each to.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let start_line = read_limited_line(&mut reader)?;
    let mut parts = start_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_string();
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::Malformed(format!(
            "method {method:?} is not an HTTP token"
        )));
    }
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no target".into()))?
        .to_string();

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_limited_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "header line without a colon: {line:?}"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|e| {
                RequestError::Malformed(format!("bad Content-Length {value:?}: {e}"))
            })?;
        }
        headers.push((name, value));
    }

    if content_length > MAX_BODY {
        return Err(RequestError::TooLarge {
            declared: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        // A body shorter than its declared length is the client's lie,
        // not a transport accident: answer 400.
        RequestError::Malformed(format!("reading {content_length}-byte body: {e}"))
    })?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes one `Connection: close` response with optional extra headers
/// (e.g. `Retry-After`).
///
/// # Errors
///
/// Returns I/O errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> Result<(), String> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("writing response: {e}"))
}

/// One parsed client-side response.
#[derive(Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one client request against `addr` (`host:port`).
///
/// # Errors
///
/// Returns connection, I/O, and malformed-response errors (all of which
/// the retrying client treats as transient).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, String)],
    body: Option<&str>,
) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let payload = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        payload.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| format!("sending request: {e}"))?;

    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("reading response: {e}"))?;
    let (head, response_body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {raw:?}"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap_or("")
        .split_whitespace()
        .nth(1)
        .ok_or("response has no status code")?
        .parse()
        .map_err(|e| format!("bad status code: {e}"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(Response {
        status,
        headers,
        body: response_body.to_string(),
    })
}

//! One submitted experiment job: a spec bound to its streaming session.
//!
//! Grid specs expand once at submission ([`GridSpec::expand`]) into a
//! [`GridSession`] the shared pool drives cell-by-cell; analysis specs
//! (miss curves, latency/capacity, planner runtimes, placement ablation)
//! are a single unit of work. Either way the finished job stores its
//! [`ExperimentReport`] pre-serialized with `serde_json::to_string_pretty`
//! — exactly the bytes [`cdcs_bench::artifact::write`] would put in
//! `out/<name>.json`, so a served report and an in-process artifact are
//! byte-comparable.
//!
//! Every failure a job can suffer is *contained*: a panicking cell (or a
//! panicking analysis run, or an injected fault) fails this job with the
//! captured message; a passed deadline moves it to `DeadlineExceeded`;
//! neither takes down a worker, the daemon, or any other tenant's jobs.

use crate::faults::FaultPlan;
use crate::protocol::{JobState, JobStatus};
use cdcs_bench::exp::{ExperimentReport, ExperimentSpec, GridAssembly, ReportData, SpecKind};
use cdcs_sim::session::clamp_intra_cell;
use cdcs_sim::{GridSession, SessionOptions, SimResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Internal lifecycle (the wire state plus the finished payloads).
#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    Done { report_json: String },
    Cancelled,
    DeadlineExceeded,
    Failed { error: String },
}

impl Phase {
    fn is_terminal(&self) -> bool {
        matches!(
            self,
            Phase::Done { .. } | Phase::Cancelled | Phase::DeadlineExceeded | Phase::Failed { .. }
        )
    }
}

/// Per-job submission options (tenant, deadline, fault plan).
#[derive(Default, Clone)]
pub struct JobOptions {
    /// The submitting tenant (for status observability; admission already
    /// happened by the time a job exists).
    pub tenant: String,
    /// Wall-clock deadline: enforced at claim time through the session
    /// and between claims by the server's watchdog.
    pub deadline: Option<Instant>,
    /// Fault-injection plan to install as the session's cell hook.
    pub faults: Option<Arc<FaultPlan>>,
}

/// The job's executable payload.
enum Work {
    /// A simulator sweep: cells stream through a session on the shared
    /// pool; the assembly half waits for the results.
    Grid {
        session: GridSession,
        assembly: Mutex<Option<GridAssembly>>,
    },
    /// An analysis spec: one opaque unit of work, run inline by whichever
    /// worker claims it.
    Inline {
        claimed: AtomicBool,
        cancelled: AtomicBool,
    },
}

/// One unit of claimed work, to be executed by a pool worker or leased to
/// a fleet runner. `Copy` so the lease table can hold a unit and hand
/// copies to the requeue path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkUnit {
    /// Run grid cell `i` of the job's session.
    Cell(usize),
    /// Run the whole (analysis) spec.
    Inline,
}

/// What a fleet lease ships to a remote runner: either one grid cell with
/// the session's (pool-clamped) config, or the whole analysis spec.
#[derive(Debug)]
pub enum LeasePayload {
    /// `(config, cell)` — the runner calls `run_cell` on them, exactly as
    /// a local session worker would.
    Cell(cdcs_sim::SimConfig, Box<cdcs_sim::runner::GridCell>),
    /// The full spec — the runner calls `spec.run()` and pretty-prints the
    /// report (byte-equal by the spec serialization fixpoint).
    Spec(ExperimentSpec),
}

/// A submitted job.
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// The spec as submitted (embedded verbatim in the report).
    pub spec: ExperimentSpec,
    /// The submitting tenant.
    pub tenant: String,
    /// The job's wall-clock deadline, if any (the watchdog scans this).
    pub deadline: Option<Instant>,
    work: Work,
    phase: Mutex<Phase>,
    /// Cells currently executing: `(cell index, start time)` — the
    /// watchdog's view for per-cell wall-clock enforcement.
    running_cells: Mutex<Vec<(usize, Instant)>>,
}

impl Job {
    /// Builds a job for `spec`, expanding grid specs eagerly so malformed
    /// submissions fail at `POST /jobs` time. `pool_workers` feeds the
    /// intra-cell nested clamp ([`clamp_intra_cell`]): `pool × inner`
    /// never exceeds the machine, exactly as in `run_grid`.
    ///
    /// # Errors
    ///
    /// Propagates spec-expansion errors (empty axes, unknown apps, ...).
    pub fn new(
        id: u64,
        spec: ExperimentSpec,
        pool_workers: usize,
        options: JobOptions,
    ) -> Result<Job, String> {
        let tenant = if options.tenant.is_empty() {
            crate::admission::DEFAULT_TENANT.to_string()
        } else {
            options.tenant.clone()
        };
        let work = match &spec.kind {
            SpecKind::Grid(grid) => {
                let (config, cells, assembly) = grid.expand()?.into_parts();
                let config = clamp_intra_cell(&config, pool_workers);
                let session_options = SessionOptions {
                    deadline: options.deadline,
                    cell_hook: options
                        .faults
                        .as_ref()
                        .filter(|plan| plan.has_cell_faults())
                        .map(FaultPlan::cell_hook),
                };
                Work::Grid {
                    session: GridSession::queued_with(&config, cells, session_options),
                    assembly: Mutex::new(Some(assembly)),
                }
            }
            _ => Work::Inline {
                claimed: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
            },
        };
        Ok(Job {
            id,
            spec,
            tenant,
            deadline: options.deadline,
            work,
            phase: Mutex::new(Phase::Queued),
            running_cells: Mutex::new(Vec::new()),
        })
    }

    /// Claims the job's next unit of work for the calling worker, or
    /// `None` when the job has nothing left to issue (drained, cancelled,
    /// past its deadline, or — for analysis jobs — already claimed).
    pub fn try_claim(&self) -> Option<WorkUnit> {
        let unit = match &self.work {
            Work::Grid { session, .. } => session.try_claim().map(WorkUnit::Cell),
            Work::Inline { claimed, cancelled } => {
                if self.deadline.is_some_and(|d| Instant::now() >= d) {
                    cancelled.store(true, Ordering::SeqCst);
                    None
                } else if cancelled.load(Ordering::SeqCst) || claimed.swap(true, Ordering::SeqCst) {
                    None
                } else {
                    Some(WorkUnit::Inline)
                }
            }
        };
        if unit.is_some() {
            let mut phase = self.lock_phase();
            if matches!(*phase, Phase::Queued) {
                *phase = Phase::Running;
            }
        }
        unit
    }

    /// Executes a claimed unit on the calling thread. Panics inside the
    /// unit are contained: a grid cell's unwind is caught by the session
    /// (failing that cell); an analysis spec's unwind is caught here
    /// (failing this job). Neither propagates to the worker.
    pub fn run(&self, unit: WorkUnit) {
        match (&self.work, unit) {
            (Work::Grid { session, .. }, WorkUnit::Cell(i)) => {
                self.lock_running().push((i, Instant::now()));
                session.run_claimed(i);
                self.lock_running().retain(|(cell, _)| *cell != i);
            }
            (Work::Inline { .. }, WorkUnit::Inline) => {
                self.lock_running().push((0, Instant::now()));
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.spec.run().and_then(|report| {
                        serde_json::to_string_pretty(&report)
                            .map_err(|e| format!("serializing report: {e}"))
                    })
                }))
                .unwrap_or_else(|payload| {
                    Err(format!("job panicked: {}", panic_message(payload.as_ref())))
                });
                self.lock_running().retain(|(cell, _)| *cell != 0);
                let mut phase = self.lock_phase();
                if !phase.is_terminal() {
                    *phase = match outcome {
                        Ok(report_json) => Phase::Done { report_json },
                        Err(error) => Phase::Failed { error },
                    };
                }
            }
            _ => unreachable!("work unit claimed from this job"),
        }
    }

    /// Finalizes the job if every issued cell has completed and no more
    /// will be issued: drains the session's stream, assembles the report
    /// (or records the failure / cancellation / expiry). Idempotent and
    /// safe to call from any worker after any unit completes.
    pub fn try_finalize(&self) {
        let Work::Grid { session, assembly } = &self.work else {
            // Inline jobs finalize in `run`; the loose ends are a job
            // cancelled or expired before any worker claimed it.
            if let Work::Inline { claimed, cancelled } = &self.work {
                let expired = self.deadline.is_some_and(|d| Instant::now() >= d);
                if (cancelled.load(Ordering::SeqCst) || expired) && !claimed.load(Ordering::SeqCst)
                {
                    let mut phase = self.lock_phase();
                    if !phase.is_terminal() {
                        *phase = if expired {
                            Phase::DeadlineExceeded
                        } else {
                            Phase::Cancelled
                        };
                    }
                }
            }
            return;
        };
        if !session.progress().finished() {
            return;
        }
        let mut phase = self.lock_phase();
        if phase.is_terminal() {
            return;
        }
        // Sole finalizer (the phase lock is held): drain the stream. recv
        // cannot block — the session is finished, so every result is
        // already queued.
        let total = session.progress().total;
        let mut slots: Vec<Option<Result<SimResult, String>>> = (0..total).map(|_| None).collect();
        while let Some(done) = session.recv() {
            slots[done.index] = Some(done.result);
        }
        if slots.iter().any(Option::is_none) {
            // Stopped before every cell was issued: partial work, no
            // report. (A cancel that lands after the last cell completed
            // still produces a full report below.)
            *phase = if session.deadline_exceeded() {
                Phase::DeadlineExceeded
            } else {
                Phase::Cancelled
            };
            return;
        }
        let mut results = Vec::with_capacity(total);
        for slot in slots {
            match slot.expect("checked above") {
                Ok(result) => results.push(result),
                Err(error) => {
                    *phase = Phase::Failed { error };
                    return;
                }
            }
        }
        let assembly = assembly
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("finalized exactly once");
        let report = ExperimentReport {
            spec: self.spec.clone(),
            data: ReportData::Grid(assembly.assemble(results)),
        };
        *phase = match serde_json::to_string_pretty(&report) {
            Ok(report_json) => Phase::Done { report_json },
            Err(error) => Phase::Failed {
                error: format!("serializing report: {error}"),
            },
        };
    }

    /// The wire payload for leasing `unit` to a remote runner.
    pub fn lease_payload(&self, unit: WorkUnit) -> LeasePayload {
        match (&self.work, unit) {
            (Work::Grid { session, .. }, WorkUnit::Cell(i)) => LeasePayload::Cell(
                session.config().clone(),
                Box::new(session.cells()[i].clone()),
            ),
            (_, WorkUnit::Inline) => LeasePayload::Spec(self.spec.clone()),
            (Work::Inline { .. }, WorkUnit::Cell(_)) => {
                unreachable!("cell unit claimed from an inline job")
            }
        }
    }

    /// Returns a claimed-but-undelivered unit to the job (its fleet lease
    /// was revoked): the cell (or the inline claim) becomes claimable
    /// again, so a dead runner costs only its in-flight work.
    pub fn requeue_unit(&self, unit: WorkUnit) {
        match (&self.work, unit) {
            (Work::Grid { session, .. }, WorkUnit::Cell(i)) => session.requeue(i),
            (Work::Inline { claimed, .. }, WorkUnit::Inline) => {
                claimed.store(false, Ordering::SeqCst);
            }
            _ => {}
        }
    }

    /// Delivers a remotely-computed cell result into the job's session —
    /// determinism makes this indistinguishable from local execution.
    pub fn deliver_cell(&self, index: usize, result: Result<SimResult, String>) {
        if let Work::Grid { session, .. } = &self.work {
            session.deliver(index, result);
        }
    }

    /// Delivers a remotely-computed analysis outcome: the report's pretty
    /// JSON on success, the error otherwise. No-op if already terminal
    /// (a late result after cancellation is simply dropped).
    pub fn deliver_inline(&self, outcome: Result<String, String>) {
        if matches!(self.work, Work::Inline { .. }) {
            let mut phase = self.lock_phase();
            if !phase.is_terminal() {
                *phase = match outcome {
                    Ok(report_json) => Phase::Done { report_json },
                    Err(error) => Phase::Failed { error },
                };
            }
        }
    }

    /// Requests cancellation: no new work is issued; in-flight cells
    /// finish. Too late for analysis jobs already running.
    pub fn cancel(&self) {
        match &self.work {
            Work::Grid { session, .. } => session.cancel_token().cancel(),
            Work::Inline { cancelled, .. } => cancelled.store(true, Ordering::SeqCst),
        }
    }

    /// Enforces a passed deadline from outside the claim path (the
    /// server's watchdog): finalizes if the job actually finished in
    /// time, otherwise stops the work and records `DeadlineExceeded`.
    pub fn expire_deadline(&self) {
        self.try_finalize();
        self.cancel();
        let mut phase = self.lock_phase();
        if !phase.is_terminal() {
            *phase = Phase::DeadlineExceeded;
        }
    }

    /// Forces the job into `Failed` with `error` (unless already
    /// terminal) and stops issuing work: the scheduler's last-resort
    /// containment when something outside the per-cell panic boundary
    /// unwinds, and the watchdog's verdict for stuck cells.
    pub fn fail_with(&self, error: String) {
        self.cancel();
        let mut phase = self.lock_phase();
        if !phase.is_terminal() {
            *phase = Phase::Failed { error };
        }
    }

    /// The longest-running in-flight cell, as `(index, elapsed)`.
    pub fn longest_running_cell(&self) -> Option<(usize, Duration)> {
        self.lock_running()
            .iter()
            .map(|&(index, start)| (index, start.elapsed()))
            .max_by_key(|&(_, elapsed)| elapsed)
    }

    /// The job's current wire status.
    pub fn status(&self) -> JobStatus {
        let phase = self.lock_phase();
        let (state, error) = match &*phase {
            Phase::Queued => (JobState::Queued, None),
            Phase::Running => (JobState::Running, None),
            Phase::Done { .. } => (JobState::Done, None),
            Phase::Cancelled => (JobState::Cancelled, None),
            Phase::DeadlineExceeded => (JobState::DeadlineExceeded, None),
            Phase::Failed { error } => (JobState::Failed, Some(error.clone())),
        };
        let (total, issued, completed) = match &self.work {
            Work::Grid { session, .. } => {
                let p = session.progress();
                (p.total, p.issued, p.completed)
            }
            Work::Inline { claimed, .. } => {
                let claimed = claimed.load(Ordering::SeqCst) as usize;
                let done = matches!(*phase, Phase::Done { .. } | Phase::Failed { .. }) as usize;
                (1, claimed.max(done), done)
            }
        };
        JobStatus {
            id: self.id,
            name: self.spec.name.clone(),
            tenant: self.tenant.clone(),
            state,
            total_cells: total,
            issued_cells: issued,
            completed_cells: completed,
            error,
        }
    }

    /// Whether the job can still make progress (queued or running).
    pub fn is_active(&self) -> bool {
        !self.lock_phase().is_terminal()
    }

    /// The finished report's JSON, when the job is done.
    pub fn report_json(&self) -> Option<String> {
        match &*self.lock_phase() {
            Phase::Done { report_json } => Some(report_json.clone()),
            _ => None,
        }
    }

    // Poison tolerance: phase/running-cell updates are straight-line
    // (no user code runs under these locks), so a poisoned guard's data
    // is intact; recovering keeps one panicked thread from wedging
    // status, cancellation, and shutdown for everyone else.
    fn lock_phase(&self) -> std::sync::MutexGuard<'_, Phase> {
        self.phase.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_running(&self) -> std::sync::MutexGuard<'_, Vec<(usize, Instant)>> {
        self.running_cells
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

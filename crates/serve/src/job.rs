//! One submitted experiment job: a spec bound to its streaming session.
//!
//! Grid specs expand once at submission ([`GridSpec::expand`]) into a
//! [`GridSession`] the shared pool drives cell-by-cell; analysis specs
//! (miss curves, latency/capacity, planner runtimes, placement ablation)
//! are a single unit of work. Either way the finished job stores its
//! [`ExperimentReport`] pre-serialized with `serde_json::to_string_pretty`
//! — exactly the bytes [`cdcs_bench::artifact::write`] would put in
//! `out/<name>.json`, so a served report and an in-process artifact are
//! byte-comparable.

use crate::protocol::{JobState, JobStatus};
use cdcs_bench::exp::{ExperimentReport, ExperimentSpec, GridAssembly, ReportData, SpecKind};
use cdcs_sim::session::clamp_intra_cell;
use cdcs_sim::{GridSession, SimResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Internal lifecycle (the wire state plus the finished payloads).
#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    Done { report_json: String },
    Cancelled,
    Failed { error: String },
}

impl Phase {
    fn is_terminal(&self) -> bool {
        matches!(
            self,
            Phase::Done { .. } | Phase::Cancelled | Phase::Failed { .. }
        )
    }
}

/// The job's executable payload.
enum Work {
    /// A simulator sweep: cells stream through a session on the shared
    /// pool; the assembly half waits for the results.
    Grid {
        session: GridSession,
        assembly: Mutex<Option<GridAssembly>>,
    },
    /// An analysis spec: one opaque unit of work, run inline by whichever
    /// worker claims it.
    Inline {
        claimed: AtomicBool,
        cancelled: AtomicBool,
    },
}

/// One unit of claimed work, to be executed by a pool worker.
pub enum WorkUnit {
    /// Run grid cell `i` of the job's session.
    Cell(usize),
    /// Run the whole (analysis) spec.
    Inline,
}

/// A submitted job.
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// The spec as submitted (embedded verbatim in the report).
    pub spec: ExperimentSpec,
    work: Work,
    phase: Mutex<Phase>,
}

impl Job {
    /// Builds a job for `spec`, expanding grid specs eagerly so malformed
    /// submissions fail at `POST /jobs` time. `pool_workers` feeds the
    /// intra-cell nested clamp ([`clamp_intra_cell`]): `pool × inner`
    /// never exceeds the machine, exactly as in `run_grid`.
    ///
    /// # Errors
    ///
    /// Propagates spec-expansion errors (empty axes, unknown apps, ...).
    pub fn new(id: u64, spec: ExperimentSpec, pool_workers: usize) -> Result<Job, String> {
        let work = match &spec.kind {
            SpecKind::Grid(grid) => {
                let (config, cells, assembly) = grid.expand()?.into_parts();
                let config = clamp_intra_cell(&config, pool_workers);
                Work::Grid {
                    session: GridSession::queued(&config, cells),
                    assembly: Mutex::new(Some(assembly)),
                }
            }
            _ => Work::Inline {
                claimed: AtomicBool::new(false),
                cancelled: AtomicBool::new(false),
            },
        };
        Ok(Job {
            id,
            spec,
            work,
            phase: Mutex::new(Phase::Queued),
        })
    }

    /// Claims the job's next unit of work for the calling worker, or
    /// `None` when the job has nothing left to issue (drained, cancelled,
    /// or — for analysis jobs — already claimed).
    pub fn try_claim(&self) -> Option<WorkUnit> {
        let unit = match &self.work {
            Work::Grid { session, .. } => session.try_claim().map(WorkUnit::Cell),
            Work::Inline { claimed, cancelled } => {
                if cancelled.load(Ordering::SeqCst) || claimed.swap(true, Ordering::SeqCst) {
                    None
                } else {
                    Some(WorkUnit::Inline)
                }
            }
        };
        if unit.is_some() {
            let mut phase = self.lock_phase();
            if matches!(*phase, Phase::Queued) {
                *phase = Phase::Running;
            }
        }
        unit
    }

    /// Executes a claimed unit on the calling thread.
    pub fn run(&self, unit: WorkUnit) {
        match (&self.work, unit) {
            (Work::Grid { session, .. }, WorkUnit::Cell(i)) => session.run_claimed(i),
            (Work::Inline { .. }, WorkUnit::Inline) => {
                let outcome = self.spec.run().and_then(|report| {
                    serde_json::to_string_pretty(&report)
                        .map_err(|e| format!("serializing report: {e}"))
                });
                let mut phase = self.lock_phase();
                if !phase.is_terminal() {
                    *phase = match outcome {
                        Ok(report_json) => Phase::Done { report_json },
                        Err(error) => Phase::Failed { error },
                    };
                }
            }
            _ => unreachable!("work unit claimed from this job"),
        }
    }

    /// Finalizes the job if every issued cell has completed and no more
    /// will be issued: drains the session's stream, assembles the report
    /// (or records the failure / cancellation). Idempotent and safe to
    /// call from any worker after any unit completes.
    pub fn try_finalize(&self) {
        let Work::Grid { session, assembly } = &self.work else {
            // Inline jobs finalize in `run`; the one loose end is a job
            // cancelled before any worker claimed it.
            if let Work::Inline { claimed, cancelled } = &self.work {
                if cancelled.load(Ordering::SeqCst) && !claimed.load(Ordering::SeqCst) {
                    let mut phase = self.lock_phase();
                    if !phase.is_terminal() {
                        *phase = Phase::Cancelled;
                    }
                }
            }
            return;
        };
        if !session.progress().finished() {
            return;
        }
        let mut phase = self.lock_phase();
        if phase.is_terminal() {
            return;
        }
        // Sole finalizer (the phase lock is held): drain the stream. recv
        // cannot block — the session is finished, so every result is
        // already queued.
        let total = session.progress().total;
        let mut slots: Vec<Option<Result<SimResult, String>>> = (0..total).map(|_| None).collect();
        while let Some(done) = session.recv() {
            slots[done.index] = Some(done.result);
        }
        if slots.iter().any(Option::is_none) {
            // Cancelled before every cell was issued: partial work, no
            // report. (A cancel that lands after the last cell completed
            // still produces a full report below.)
            *phase = Phase::Cancelled;
            return;
        }
        let mut results = Vec::with_capacity(total);
        for slot in slots {
            match slot.expect("checked above") {
                Ok(result) => results.push(result),
                Err(error) => {
                    *phase = Phase::Failed { error };
                    return;
                }
            }
        }
        let assembly = assembly
            .lock()
            .expect("assembly lock")
            .take()
            .expect("finalized exactly once");
        let report = ExperimentReport {
            spec: self.spec.clone(),
            data: ReportData::Grid(assembly.assemble(results)),
        };
        *phase = match serde_json::to_string_pretty(&report) {
            Ok(report_json) => Phase::Done { report_json },
            Err(error) => Phase::Failed {
                error: format!("serializing report: {error}"),
            },
        };
    }

    /// Requests cancellation: no new work is issued; in-flight cells
    /// finish. Too late for analysis jobs already running.
    pub fn cancel(&self) {
        match &self.work {
            Work::Grid { session, .. } => session.cancel_token().cancel(),
            Work::Inline { cancelled, .. } => cancelled.store(true, Ordering::SeqCst),
        }
    }

    /// The job's current wire status.
    pub fn status(&self) -> JobStatus {
        let phase = self.lock_phase();
        let (state, error) = match &*phase {
            Phase::Queued => (JobState::Queued, None),
            Phase::Running => (JobState::Running, None),
            Phase::Done { .. } => (JobState::Done, None),
            Phase::Cancelled => (JobState::Cancelled, None),
            Phase::Failed { error } => (JobState::Failed, Some(error.clone())),
        };
        let (total, issued, completed) = match &self.work {
            Work::Grid { session, .. } => {
                let p = session.progress();
                (p.total, p.issued, p.completed)
            }
            Work::Inline { claimed, .. } => {
                let claimed = claimed.load(Ordering::SeqCst) as usize;
                let done = matches!(*phase, Phase::Done { .. } | Phase::Failed { .. }) as usize;
                (1, claimed.max(done), done)
            }
        };
        JobStatus {
            id: self.id,
            name: self.spec.name.clone(),
            state,
            total_cells: total,
            issued_cells: issued,
            completed_cells: completed,
            error,
        }
    }

    /// The finished report's JSON, when the job is done.
    pub fn report_json(&self) -> Option<String> {
        match &*self.lock_phase() {
            Phase::Done { report_json } => Some(report_json.clone()),
            _ => None,
        }
    }

    fn lock_phase(&self) -> std::sync::MutexGuard<'_, Phase> {
        self.phase.lock().expect("job phase poisoned")
    }
}

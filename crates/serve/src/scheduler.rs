//! Fair scheduling of concurrent jobs over one shared worker pool.
//!
//! Jobs sit in a FIFO rotation. A worker pops the front job, claims **one**
//! unit of work from it under the scheduler lock, pushes the job to the
//! back, and executes the unit outside the lock. With several active jobs
//! the claim sequence therefore strictly interleaves them — two concurrent
//! sweeps each make progress on every rotation lap, regardless of their
//! sizes (no starvation; the fairness test pins the alternation). A job
//! whose claim comes back empty (drained or cancelled) leaves the rotation
//! and is finalized.
//!
//! Claims are recorded in a log (job ids, in claim order) so fairness is
//! observable and testable without timing assumptions.
//!
//! Workers are expendable-proof: the whole execute/finalize step runs
//! inside `catch_unwind`, so an unwind that escapes the per-cell panic
//! boundary fails *that job* (with the captured message) and the worker
//! returns to the rotation — a poisoned job can never shrink the pool or
//! take the daemon down. Shutdown comes in two flavors: [`Scheduler::stop`]
//! (running cells finish, queued work is abandoned) and
//! [`Scheduler::drain`] (workers keep claiming until every queued cell has
//! run, then exit).

use crate::job::{panic_message, Job, WorkUnit};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

#[derive(Default)]
struct Rotation {
    queue: VecDeque<Arc<Job>>,
    claim_log: Vec<u64>,
}

/// The shared scheduler: rotation + pool wake-up.
/// One non-blocking claim attempt: at most one claimed unit, plus the
/// jobs drained from the rotation (empty claims) that the caller must
/// finalize *outside* its own locks.
pub(crate) struct ClaimOutcome {
    pub claimed: Option<(Arc<Job>, WorkUnit)>,
    pub drained: Vec<Arc<Job>>,
}

pub struct Scheduler {
    rotation: Mutex<Rotation>,
    cv: Condvar,
    shutdown: AtomicBool,
    draining: AtomicBool,
}

/// What a worker got from one rotation pop.
enum Pop {
    /// Pool is shutting down.
    Shutdown,
    /// A claimed unit of `job`'s work (job already re-queued).
    Task(Arc<Job>, WorkUnit),
    /// `job` had nothing to claim and left the rotation.
    Drained(Arc<Job>),
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler {
            rotation: Mutex::new(Rotation::default()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        }
    }

    /// Adds a job to the rotation and wakes the pool.
    pub fn enqueue(&self, job: Arc<Job>) {
        let mut rotation = self.lock();
        rotation.queue.push_back(job);
        self.cv.notify_all();
    }

    /// Stops the pool: blocked workers wake and exit; running cells finish;
    /// queued cells are abandoned.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _rotation = self.lock();
        self.cv.notify_all();
    }

    /// Drains the pool: workers keep claiming until the rotation is empty
    /// (every queued cell of every job has run), then exit.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let _rotation = self.lock();
        self.cv.notify_all();
    }

    /// The claim sequence so far (job ids, in claim order).
    pub fn claim_log(&self) -> Vec<u64> {
        self.lock().claim_log.clone()
    }

    /// Non-blocking single-unit claim for the fleet lease path: scans the
    /// rotation once (at most one full lap), claiming one unit from the
    /// first job that has work — exactly the fairness step a pool worker
    /// takes, so fleet leases and local workers interleave jobs
    /// identically. Jobs whose claim comes back empty leave the rotation
    /// and are returned as `drained` for the caller to finalize *outside*
    /// its own locks.
    pub(crate) fn try_claim_unit(&self) -> ClaimOutcome {
        let mut drained = Vec::new();
        if self.shutdown.load(Ordering::SeqCst) {
            return ClaimOutcome {
                claimed: None,
                drained,
            };
        }
        let mut rotation = self.lock();
        for _ in 0..rotation.queue.len() {
            let Some(job) = rotation.queue.pop_front() else {
                break;
            };
            match job.try_claim() {
                Some(unit) => {
                    rotation.claim_log.push(job.id);
                    rotation.queue.push_back(Arc::clone(&job));
                    return ClaimOutcome {
                        claimed: Some((job, unit)),
                        drained,
                    };
                }
                None => drained.push(job),
            }
        }
        ClaimOutcome {
            claimed: None,
            drained,
        }
    }

    /// Returns a job to the rotation after a revoked lease re-queued some
    /// of its work (no-op if the job is already rotating — a job must
    /// never occupy two rotation slots, or fairness double-counts it).
    pub fn reenqueue(&self, job: Arc<Job>) {
        let mut rotation = self.lock();
        if rotation.queue.iter().any(|j| j.id == job.id) {
            return;
        }
        rotation.queue.push_back(job);
        self.cv.notify_all();
    }

    /// Starts `workers` pool threads driving this scheduler.
    pub fn start_pool(self: &Arc<Self>, workers: usize) -> Vec<JoinHandle<()>> {
        (0..workers.max(1))
            .map(|_| {
                let sched = Arc::clone(self);
                std::thread::spawn(move || sched.worker_loop())
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            match self.pop() {
                Pop::Shutdown => return,
                Pop::Drained(job) => run_contained(&job, None),
                Pop::Task(job, unit) => run_contained(&job, Some(unit)),
            }
        }
    }

    /// Pops one job and claims one unit from it (see module docs). Blocks
    /// while the rotation is empty (unless draining or shut down).
    fn pop(&self) -> Pop {
        let mut rotation = self.lock();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Pop::Shutdown;
            }
            if let Some(job) = rotation.queue.pop_front() {
                return match job.try_claim() {
                    Some(unit) => {
                        rotation.claim_log.push(job.id);
                        rotation.queue.push_back(Arc::clone(&job));
                        Pop::Task(job, unit)
                    }
                    None => Pop::Drained(job),
                };
            }
            if self.draining.load(Ordering::SeqCst) {
                // Draining and the rotation is empty: every queued cell
                // has been claimed (in-flight ones finish on their own
                // workers). Done.
                return Pop::Shutdown;
            }
            rotation = self
                .cv
                .wait(rotation)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    // The rotation holds only queue order and the claim log — both
    // updated in straight-line code — so a poisoned guard's data is
    // intact and recovering it beats wedging every worker.
    fn lock(&self) -> std::sync::MutexGuard<'_, Rotation> {
        self.rotation.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Runs one claimed unit (or just finalization) with last-resort panic
/// containment: an unwind is converted into the job's failure instead of
/// the worker's death. `pub(crate)` because the fleet's result/revocation
/// paths finalize jobs through the same boundary.
pub(crate) fn run_contained(job: &Arc<Job>, unit: Option<WorkUnit>) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(unit) = unit {
            job.run(unit);
        }
        job.try_finalize();
    }));
    if let Err(payload) = outcome {
        job.fail_with(format!(
            "internal error executing job {}: {}",
            job.id,
            panic_message(payload.as_ref())
        ));
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

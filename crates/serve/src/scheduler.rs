//! Fair scheduling of concurrent jobs over one shared worker pool.
//!
//! Jobs sit in a FIFO rotation. A worker pops the front job, claims **one**
//! unit of work from it under the scheduler lock, pushes the job to the
//! back, and executes the unit outside the lock. With several active jobs
//! the claim sequence therefore strictly interleaves them — two concurrent
//! sweeps each make progress on every rotation lap, regardless of their
//! sizes (no starvation; the fairness test pins the alternation). A job
//! whose claim comes back empty (drained or cancelled) leaves the rotation
//! and is finalized.
//!
//! Claims are recorded in a log (job ids, in claim order) so fairness is
//! observable and testable without timing assumptions.

use crate::job::{Job, WorkUnit};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

#[derive(Default)]
struct Rotation {
    queue: VecDeque<Arc<Job>>,
    claim_log: Vec<u64>,
}

/// The shared scheduler: rotation + pool wake-up.
pub struct Scheduler {
    rotation: Mutex<Rotation>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// What a worker got from one rotation pop.
enum Pop {
    /// Pool is shutting down.
    Shutdown,
    /// A claimed unit of `job`'s work (job already re-queued).
    Task(Arc<Job>, WorkUnit),
    /// `job` had nothing to claim and left the rotation.
    Drained(Arc<Job>),
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Scheduler {
        Scheduler {
            rotation: Mutex::new(Rotation::default()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Adds a job to the rotation and wakes the pool.
    pub fn enqueue(&self, job: Arc<Job>) {
        let mut rotation = self.lock();
        rotation.queue.push_back(job);
        self.cv.notify_all();
    }

    /// Stops the pool: blocked workers wake and exit; running cells finish.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _rotation = self.lock();
        self.cv.notify_all();
    }

    /// The claim sequence so far (job ids, in claim order).
    pub fn claim_log(&self) -> Vec<u64> {
        self.lock().claim_log.clone()
    }

    /// Starts `workers` pool threads driving this scheduler.
    pub fn start_pool(self: &Arc<Self>, workers: usize) -> Vec<JoinHandle<()>> {
        (0..workers.max(1))
            .map(|_| {
                let sched = Arc::clone(self);
                std::thread::spawn(move || sched.worker_loop())
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            match self.pop() {
                Pop::Shutdown => return,
                Pop::Drained(job) => job.try_finalize(),
                Pop::Task(job, unit) => {
                    job.run(unit);
                    job.try_finalize();
                }
            }
        }
    }

    /// Pops one job and claims one unit from it (see module docs). Blocks
    /// while the rotation is empty.
    fn pop(&self) -> Pop {
        let mut rotation = self.lock();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Pop::Shutdown;
            }
            if let Some(job) = rotation.queue.pop_front() {
                return match job.try_claim() {
                    Some(unit) => {
                        rotation.claim_log.push(job.id);
                        rotation.queue.push_back(Arc::clone(&job));
                        Pop::Task(job, unit)
                    }
                    None => Pop::Drained(job),
                };
            }
            rotation = self.cv.wait(rotation).expect("scheduler poisoned");
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Rotation> {
        self.rotation.lock().expect("scheduler poisoned")
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

//! The runner side of the fleet protocol: what `cdcs-runner` executes.
//!
//! A [`Runner`] registers with a daemon, then loops: poll for a lease,
//! execute it (a grid cell via [`cdcs_sim::runner::run_cell`] on the
//! shipped `(config, cell)` — the *same entry point* a local session
//! worker uses, so the result is bit-identical — or a whole analysis
//! spec via `spec.run()`), heartbeat while working, and post the result.
//! A heartbeat answered `410 Gone` means the lease was revoked (the
//! daemon re-queued the unit): the runner abandons the work and polls
//! again. A `404` from poll means the daemon expired this runner (or
//! restarted): it re-registers and continues — runners are cattle.
//!
//! Execution is panic-contained: an unwinding cell becomes that lease's
//! `err` result, never a dead runner. Transport failures back off with
//! the client's bounded [`RetryPolicy`] jitter.
//!
//! [`Runner::spawn`] runs the loop on a background thread with a stop
//! flag — the shape the fleet e2e suite uses to stand up a 10-runner
//! fleet in-process; the `cdcs-runner` binary calls [`Runner::run`]
//! directly and stops on daemon shutdown.

use crate::client::RetryPolicy;
use crate::http;
use crate::job::panic_message;
use crate::protocol::{LeaseGrant, LeaseResult, PollReply, RegisterReply, RunnerHello};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A fleet worker bound to one daemon.
#[derive(Debug, Clone)]
pub struct Runner {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Free-form name sent at registration (host, pid, ...).
    pub name: String,
    /// Backoff policy for transport failures.
    pub retry: RetryPolicy,
}

/// A spawned runner loop; [`RunnerHandle::stop`] deregisters and joins.
pub struct RunnerHandle {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl RunnerHandle {
    /// Signals the loop to stop (it deregisters gracefully) and joins it.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }
}

impl Runner {
    /// A runner for the daemon at `addr` with default retries.
    pub fn new(addr: impl Into<String>, name: impl Into<String>) -> Runner {
        Runner {
            addr: addr.into(),
            name: name.into(),
            retry: RetryPolicy::default(),
        }
    }

    /// Starts the worker loop on a background thread.
    pub fn spawn(self) -> RunnerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || self.run(&flag));
        RunnerHandle { stop, thread }
    }

    /// Runs the worker loop until `stop` is set: register, then
    /// poll/execute/report, re-registering whenever the daemon forgets
    /// this runner. Returns after a graceful deregistration (or when the
    /// daemon stays unreachable through a whole backoff ladder *and*
    /// `stop` is set — an unreachable daemon is otherwise retried
    /// forever, because daemon restarts are survivable).
    pub fn run(&self, stop: &AtomicBool) {
        let mut identity: Option<RegisterReply> = None;
        let mut failures = 0u32;
        while !stop.load(Ordering::SeqCst) {
            let Some(me) = identity.clone().or_else(|| {
                let registered = self.register();
                identity.clone_from(&registered);
                registered
            }) else {
                failures += 1;
                std::thread::sleep(self.retry.sleep_for(failures));
                continue;
            };
            match self.poll(me.runner_id) {
                Ok(Some(lease)) => {
                    failures = 0;
                    self.execute(&me, &lease);
                }
                Ok(None) => {
                    failures = 0;
                    std::thread::sleep(Duration::from_millis(me.poll_ms.max(1)));
                }
                Err(PollFailure::Forgotten) => identity = None,
                Err(PollFailure::Transport) => {
                    failures += 1;
                    std::thread::sleep(self.retry.sleep_for(failures));
                }
            }
        }
        if let Some(me) = identity {
            // Graceful exit: hand back anything the daemon still thinks
            // we hold. Best-effort — expiry would reclaim it anyway.
            let _ = http::request(
                &self.addr,
                "DELETE",
                &format!("/fleet/runners/{}", me.runner_id),
                &[],
                None,
            );
        }
    }

    fn register(&self) -> Option<RegisterReply> {
        let hello = serde_json::to_string(&RunnerHello {
            name: self.name.clone(),
        })
        .ok()?;
        let response =
            http::request(&self.addr, "POST", "/fleet/runners", &[], Some(&hello)).ok()?;
        if !(200..300).contains(&response.status) {
            return None;
        }
        serde_json::from_str(&response.body).ok()
    }

    fn poll(&self, runner_id: u64) -> Result<Option<LeaseGrant>, PollFailure> {
        let path = format!("/fleet/runners/{runner_id}/poll");
        let response = http::request(&self.addr, "POST", &path, &[], Some("{}"))
            .map_err(|_| PollFailure::Transport)?;
        match response.status {
            s if (200..300).contains(&s) => {
                let reply: PollReply =
                    serde_json::from_str(&response.body).map_err(|_| PollFailure::Transport)?;
                Ok(reply.lease)
            }
            404 => Err(PollFailure::Forgotten),
            _ => Err(PollFailure::Transport),
        }
    }

    /// Executes one lease with a heartbeat thread alongside, then posts
    /// the result — unless a heartbeat learned the lease was revoked, in
    /// which case the work is abandoned (its unit is already re-queued).
    fn execute(&self, me: &RegisterReply, lease: &LeaseGrant) {
        let lost = AtomicBool::new(false);
        let done = AtomicBool::new(false);
        // A third of the TTL keeps two full misses inside the window.
        let beat_every = Duration::from_millis((me.lease_ttl_ms / 3).max(10));
        let result = std::thread::scope(|scope| {
            scope.spawn(|| {
                while !done.load(Ordering::SeqCst) {
                    std::thread::sleep(beat_every);
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    let path = format!("/fleet/leases/{}/heartbeat", lease.lease_id);
                    if let Ok(response) = http::request(&self.addr, "POST", &path, &[], Some("{}"))
                    {
                        if response.status == 410 {
                            lost.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            });
            let result = run_lease(lease);
            done.store(true, Ordering::SeqCst);
            result
        });
        if lost.load(Ordering::SeqCst) {
            return;
        }
        let Ok(body) = serde_json::to_string(&result) else {
            return;
        };
        let path = format!("/fleet/leases/{}/result", lease.lease_id);
        // Best-effort with bounded retries: a revoked lease answers 410
        // (stale, drop it); a dead daemon re-queues by expiry.
        for attempt in 1..=self.retry.max_attempts {
            match http::request(&self.addr, "POST", &path, &[], Some(&body)) {
                Ok(_) => return,
                Err(_) => std::thread::sleep(self.retry.sleep_for(attempt)),
            }
        }
    }
}

enum PollFailure {
    /// The daemon does not know this runner id: re-register.
    Forgotten,
    /// Transport or server trouble: back off and retry.
    Transport,
}

/// Executes a lease's payload, panic-contained.
fn run_lease(lease: &LeaseGrant) -> LeaseResult {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let (Some(config), Some(cell)) = (&lease.config, &lease.cell) {
            match cdcs_sim::runner::run_cell(config, cell) {
                Ok(result) => LeaseResult {
                    ok: Some(result),
                    ..LeaseResult::default()
                },
                Err(err) => LeaseResult {
                    err: Some(err),
                    ..LeaseResult::default()
                },
            }
        } else if let Some(spec) = &lease.spec {
            match spec.run().and_then(|report| {
                serde_json::to_string_pretty(&report)
                    .map_err(|e| format!("serializing report: {e}"))
            }) {
                Ok(json) => LeaseResult {
                    report_json: Some(json),
                    ..LeaseResult::default()
                },
                Err(err) => LeaseResult {
                    err: Some(err),
                    ..LeaseResult::default()
                },
            }
        } else {
            LeaseResult {
                err: Some("lease carried neither a cell nor a spec".into()),
                ..LeaseResult::default()
            }
        }
    }));
    outcome.unwrap_or_else(|payload| LeaseResult {
        err: Some(format!(
            "cell panicked on runner: {}",
            panic_message(payload.as_ref())
        )),
        ..LeaseResult::default()
    })
}

//! Deterministic fault injection for the daemon.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (the `CDCS_FAULT`
//! environment variable, or `--fault` on `cdcs-serve`) and threaded into
//! the two places the service can be hurt:
//!
//! * **cell faults** — installed as the session's
//!   [`cdcs_sim::CellHook`], they fire on the worker thread just before a
//!   matching cell runs: `panic_cell` panics (caught by the session's
//!   panic boundary, so it fails *that cell*), `slow_cell` sleeps.
//! * **connection faults** — consulted by the HTTP front end before a
//!   connection is served: `drop_conn` closes the socket without a
//!   response, `garble_conn` writes bytes that are not HTTP.
//!
//! * **lease faults** — consulted by the fleet at grant time:
//!   `lose_lease` dooms a matching cell's lease on grant — the cell is
//!   re-queued immediately and the lease is never entered in the table,
//!   so the runner's heartbeats and result land stale. This exercises
//!   the whole revoke-and-requeue path deterministically, without
//!   waiting out a heartbeat window.
//!
//! Every rule carries a *budget* (how many times it fires, default once)
//! so a harness run is deterministic and self-limiting: inject a panic
//! into one job's cell 3, then watch the daemon serve the next job
//! cleanly — the exact shape of the fault-injection e2e suite and the CI
//! smoke job.
//!
//! Grammar (comma-separated, whitespace ignored):
//!
//! ```text
//! panic_cell:<index>[:<count>]
//! slow_cell:<index>:<millis>[:<count>]
//! drop_conn[:<count>]
//! garble_conn[:<count>]
//! lose_lease:<index>[:<count>]
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do to a matching cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellFault {
    /// Panic on the worker thread (the session converts it into the
    /// cell's `Err` with the message preserved).
    Panic,
    /// Sleep for the given duration before running the cell.
    Slow(Duration),
}

/// What to do to a matching connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Close the socket without writing a response.
    Drop,
    /// Write non-HTTP bytes, then close.
    Garble,
}

#[derive(Debug)]
struct CellRule {
    index: usize,
    fault: CellFault,
    budget: AtomicUsize,
}

#[derive(Debug)]
struct ConnRule {
    fault: ConnFault,
    budget: AtomicUsize,
}

#[derive(Debug)]
struct LeaseRule {
    index: usize,
    budget: AtomicUsize,
}

/// A parsed, budgeted set of faults to inject. Cheap to share; all state
/// is atomic budgets.
#[derive(Debug, Default)]
pub struct FaultPlan {
    cells: Vec<CellRule>,
    conns: Vec<ConnRule>,
    leases: Vec<LeaseRule>,
}

impl FaultPlan {
    /// Parses a fault spec string (see the module docs for the grammar).
    /// An empty string is an empty plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.split(':');
            let kind = parts.next().unwrap_or("");
            let mut num = |what: &str| -> Result<usize, String> {
                let raw = parts
                    .next()
                    .ok_or_else(|| format!("fault {entry:?}: missing {what}"))?;
                raw.parse()
                    .map_err(|e| format!("fault {entry:?}: bad {what} {raw:?}: {e}"))
            };
            match kind {
                "panic_cell" | "slow_cell" => {
                    let index = num("cell index")?;
                    let fault = if kind == "panic_cell" {
                        CellFault::Panic
                    } else {
                        CellFault::Slow(Duration::from_millis(num("millis")? as u64))
                    };
                    let budget = parts.next().map_or(Ok(1), |raw| {
                        raw.parse()
                            .map_err(|e| format!("fault {entry:?}: bad count {raw:?}: {e}"))
                    })?;
                    plan.cells.push(CellRule {
                        index,
                        fault,
                        budget: AtomicUsize::new(budget),
                    });
                }
                "lose_lease" => {
                    let index = num("cell index")?;
                    let budget = parts.next().map_or(Ok(1), |raw| {
                        raw.parse()
                            .map_err(|e| format!("fault {entry:?}: bad count {raw:?}: {e}"))
                    })?;
                    plan.leases.push(LeaseRule {
                        index,
                        budget: AtomicUsize::new(budget),
                    });
                }
                "drop_conn" | "garble_conn" => {
                    let fault = if kind == "drop_conn" {
                        ConnFault::Drop
                    } else {
                        ConnFault::Garble
                    };
                    let budget = parts.next().map_or(Ok(1), |raw| {
                        raw.parse()
                            .map_err(|e| format!("fault {entry:?}: bad count {raw:?}: {e}"))
                    })?;
                    plan.conns.push(ConnRule {
                        fault,
                        budget: AtomicUsize::new(budget),
                    });
                }
                other => return Err(format!("unknown fault kind {other:?} in {entry:?}")),
            }
            if parts.next().is_some() {
                return Err(format!("fault {entry:?}: trailing fields"));
            }
        }
        Ok(plan)
    }

    /// The plan from the `CDCS_FAULT` environment variable (empty when
    /// unset).
    ///
    /// # Errors
    ///
    /// Propagates parse errors so a typoed injection spec fails loudly at
    /// daemon start instead of silently injecting nothing.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("CDCS_FAULT") {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Whether the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty() && self.conns.is_empty() && self.leases.is_empty()
    }

    /// Whether any cell rules exist (used to decide whether a session
    /// needs a hook installed).
    pub fn has_cell_faults(&self) -> bool {
        !self.cells.is_empty()
    }

    /// Fires the first in-budget rule matching `index` — panicking or
    /// sleeping on the calling (worker) thread. Call inside a panic
    /// boundary.
    pub fn on_cell(&self, index: usize) {
        for rule in &self.cells {
            if rule.index == index && take_budget(&rule.budget) {
                match rule.fault {
                    CellFault::Panic => {
                        panic!("injected fault: panic_cell {index}")
                    }
                    CellFault::Slow(pause) => std::thread::sleep(pause),
                }
            }
        }
    }

    /// Whether an in-budget `lose_lease` rule matches a grant of cell
    /// `index` — consuming one budget unit if so. `true` means the fleet
    /// must doom this grant: re-queue the cell now and never enter the
    /// lease in the table.
    pub fn on_lease(&self, index: usize) -> bool {
        self.leases
            .iter()
            .any(|rule| rule.index == index && take_budget(&rule.budget))
    }

    /// Takes the next in-budget connection fault, if any.
    pub fn on_conn(&self) -> Option<ConnFault> {
        self.conns
            .iter()
            .find(|rule| take_budget(&rule.budget))
            .map(|rule| rule.fault)
    }

    /// The plan as a session cell hook.
    pub fn cell_hook(self: &Arc<Self>) -> cdcs_sim::CellHook {
        let plan = Arc::clone(self);
        Arc::new(move |index| plan.on_cell(index))
    }
}

/// Decrements `budget` if positive; returns whether a unit was taken.
fn take_budget(budget: &AtomicUsize) -> bool {
    budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let plan =
            FaultPlan::parse("panic_cell:3, slow_cell:1:250:2, drop_conn:4, garble_conn").unwrap();
        assert_eq!(plan.cells.len(), 2);
        assert_eq!(plan.cells[0].index, 3);
        assert_eq!(plan.cells[0].fault, CellFault::Panic);
        assert_eq!(plan.cells[0].budget.load(Ordering::SeqCst), 1);
        assert_eq!(
            plan.cells[1].fault,
            CellFault::Slow(Duration::from_millis(250))
        );
        assert_eq!(plan.cells[1].budget.load(Ordering::SeqCst), 2);
        assert_eq!(plan.conns.len(), 2);
        assert_eq!(plan.conns[0].fault, ConnFault::Drop);
        assert_eq!(plan.conns[0].budget.load(Ordering::SeqCst), 4);
        assert_eq!(plan.conns[1].budget.load(Ordering::SeqCst), 1);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,  ").unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "panic_cell",
            "panic_cell:x",
            "slow_cell:1",
            "slow_cell:1:abc",
            "panic_cell:1:2:3",
            "lose_lease",
            "lose_lease:x",
            "lose_lease:1:2:3",
            "meteor_strike:7",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn lose_lease_fires_per_matching_grant_within_budget() {
        let plan = FaultPlan::parse("lose_lease:2:2").unwrap();
        assert!(!plan.is_empty());
        assert!(!plan.on_lease(0), "non-matching cell is untouched");
        assert!(plan.on_lease(2));
        assert!(plan.on_lease(2));
        assert!(!plan.on_lease(2), "budget exhausted");
        let single = FaultPlan::parse("lose_lease:5").unwrap();
        assert!(single.on_lease(5));
        assert!(!single.on_lease(5), "default budget is one");
    }

    #[test]
    fn budgets_are_consumed_exactly() {
        let plan = FaultPlan::parse("drop_conn:2").unwrap();
        assert_eq!(plan.on_conn(), Some(ConnFault::Drop));
        assert_eq!(plan.on_conn(), Some(ConnFault::Drop));
        assert_eq!(plan.on_conn(), None, "budget exhausted");
    }

    #[test]
    fn cell_panic_fires_once_with_the_injection_message() {
        let plan = Arc::new(FaultPlan::parse("panic_cell:3").unwrap());
        plan.on_cell(2); // no match, no fire
        let hook = plan.cell_hook();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(3)))
            .expect_err("injected panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "injected fault: panic_cell 3");
        plan.on_cell(3); // budget spent: a second hit is clean
    }

    #[test]
    fn slow_cell_sleeps_without_failing() {
        let plan = FaultPlan::parse("slow_cell:0:1").unwrap();
        let before = std::time::Instant::now();
        plan.on_cell(0);
        assert!(before.elapsed() >= Duration::from_millis(1));
        plan.on_cell(0); // budget spent: no second sleep
    }
}

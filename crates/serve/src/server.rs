//! The experiment daemon: HTTP front end over the shared-pool scheduler.
//!
//! Routes (all JSON, `Connection: close`):
//!
//! * `POST /jobs` — body is an [`ExperimentSpec`]; expands the spec,
//!   enqueues the job, replies `{"id": n}`.
//! * `GET /jobs` — every job's status, in submission order.
//! * `GET /jobs/<id>` — one job's live status (per-cell progress).
//! * `GET /jobs/<id>/report` — the finished [`ExperimentReport`] JSON,
//!   byte-equal to the `out/<name>.json` artifact the same spec produces
//!   in process; `409` while the job is still running.
//! * `DELETE /jobs/<id>` — cancels via the session's token; replies with
//!   the job's status.
//! * `GET /healthz` — liveness probe.

use crate::http::{read_request, write_response, Request};
use crate::job::Job;
use crate::protocol::{ErrorReply, JobList, SubmitReply};
use crate::scheduler::Scheduler;
use cdcs_bench::exp::ExperimentSpec;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

struct ServerState {
    jobs: Mutex<Vec<Arc<Job>>>,
    next_id: AtomicU64,
    sched: Arc<Scheduler>,
    pool_workers: usize,
    stopping: AtomicBool,
}

/// A running daemon: worker pool + accept loop. Dropping (or
/// [`JobServer::shutdown`]) stops accepting, stops the pool, and joins
/// every thread; running cells finish first.
pub struct JobServer {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Binds `addr` (e.g. `127.0.0.1:7077`, or port `0` for an ephemeral
    /// port) and starts `workers` pool threads plus the accept loop.
    ///
    /// # Errors
    ///
    /// Returns bind errors.
    pub fn start(addr: &str, workers: usize) -> Result<JobServer, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        let state = Arc::new(ServerState {
            jobs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            sched: Arc::new(Scheduler::new()),
            pool_workers: workers.max(1),
            stopping: AtomicBool::new(false),
        });
        let mut threads = state.sched.start_pool(state.pool_workers);
        let accept_state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.stopping.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(mut stream) = stream else { continue };
                // One detached thread per connection, with I/O deadlines:
                // a client that connects and goes silent must never wedge
                // the accept loop (or `GET /healthz`) — it times out in
                // its own thread instead.
                let timeout = Some(std::time::Duration::from_secs(10));
                let _ = stream.set_read_timeout(timeout);
                let _ = stream.set_write_timeout(timeout);
                let conn_state = Arc::clone(&accept_state);
                std::thread::spawn(move || conn_state.handle(&mut stream));
            }
        }));
        Ok(JobServer {
            state,
            addr: local,
            threads,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The claim sequence so far (job ids, in claim order) — the fairness
    /// tests assert concurrent jobs alternate here.
    pub fn claim_log(&self) -> Vec<u64> {
        self.state.sched.claim_log()
    }

    /// Submits a spec directly (the HTTP-free path for embedding and
    /// tests).
    ///
    /// # Errors
    ///
    /// Propagates spec-expansion errors.
    pub fn submit(&self, spec: ExperimentSpec) -> Result<u64, String> {
        self.state.submit(spec)
    }

    /// Stops the accept loop and the pool, joining every thread.
    pub fn shutdown(mut self) {
        self.stop();
        for handle in self.threads.drain(..) {
            handle.join().expect("server thread panicked");
        }
    }

    fn stop(&self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.sched.stop();
        // Unblock `listener.incoming()` with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks the calling thread on the accept loop (the daemon binary's
    /// main thread parks here).
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            handle.join().expect("server thread panicked");
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.stop();
        for handle in self.threads.drain(..) {
            handle.join().expect("server thread panicked");
        }
    }
}

impl ServerState {
    fn submit(&self, spec: ExperimentSpec) -> Result<u64, String> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let job = Arc::new(Job::new(id, spec, self.pool_workers)?);
        self.jobs.lock().expect("jobs lock").push(Arc::clone(&job));
        self.sched.enqueue(job);
        Ok(id)
    }

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs
            .lock()
            .expect("jobs lock")
            .iter()
            .find(|j| j.id == id)
            .cloned()
    }

    /// Handles one request; every response is written before the
    /// connection closes.
    fn handle(&self, stream: &mut TcpStream) {
        let reply = match read_request(stream) {
            Ok(request) => self.route(&request),
            Err(error) => Reply::error(400, "Bad Request", &error),
        };
        let _ = write_response(
            stream,
            reply.status,
            reply.reason,
            "application/json",
            reply.body.as_bytes(),
        );
    }

    fn route(&self, request: &Request) -> Reply {
        let segments: Vec<&str> = request
            .path
            .split('?')
            .next()
            .unwrap_or("")
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Reply::ok("{\"ok\":true}".into()),
            ("POST", ["jobs"]) => self.post_job(&request.body),
            ("GET", ["jobs"]) => {
                let jobs = self.jobs.lock().expect("jobs lock");
                let list = JobList {
                    jobs: jobs.iter().map(|j| j.status()).collect(),
                };
                Reply::json(&list)
            }
            ("GET", ["jobs", id]) => self.with_job(id, |job| Reply::json(&job.status())),
            ("GET", ["jobs", id, "report"]) => self.with_job(id, |job| match job.report_json() {
                Some(json) => Reply::ok(json),
                None => Reply::error(
                    409,
                    "Conflict",
                    &format!(
                        "job {} is not finished (state {:?})",
                        job.id,
                        job.status().state
                    ),
                ),
            }),
            ("DELETE", ["jobs", id]) => self.with_job(id, |job| {
                job.cancel();
                job.try_finalize();
                Reply::json(&job.status())
            }),
            _ => Reply::error(
                404,
                "Not Found",
                &format!("no route for {} {}", request.method, request.path),
            ),
        }
    }

    fn post_job(&self, body: &[u8]) -> Reply {
        let text = match std::str::from_utf8(body) {
            Ok(text) => text,
            Err(e) => return Reply::error(400, "Bad Request", &format!("body is not UTF-8: {e}")),
        };
        let spec: ExperimentSpec = match serde_json::from_str(text) {
            Ok(spec) => spec,
            Err(e) => {
                return Reply::error(400, "Bad Request", &format!("parsing spec: {e}"));
            }
        };
        match self.submit(spec) {
            Ok(id) => Reply {
                status: 201,
                reason: "Created",
                body: serde_json::to_string(&SubmitReply { id }).expect("submit reply serializes"),
            },
            Err(error) => Reply::error(400, "Bad Request", &error),
        }
    }

    fn with_job(&self, id: &str, f: impl FnOnce(&Job) -> Reply) -> Reply {
        let Ok(id) = id.parse::<u64>() else {
            return Reply::error(400, "Bad Request", &format!("bad job id {id:?}"));
        };
        match self.job(id) {
            Some(job) => f(&job),
            None => Reply::error(404, "Not Found", &format!("no job {id}")),
        }
    }
}

struct Reply {
    status: u16,
    reason: &'static str,
    body: String,
}

impl Reply {
    fn ok(body: String) -> Reply {
        Reply {
            status: 200,
            reason: "OK",
            body,
        }
    }

    fn json<T: serde::Serialize>(value: &T) -> Reply {
        Reply::ok(serde_json::to_string(value).expect("reply serializes"))
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Reply {
        Reply {
            status,
            reason,
            body: serde_json::to_string(&ErrorReply {
                error: message.to_string(),
            })
            .expect("error reply serializes"),
        }
    }
}

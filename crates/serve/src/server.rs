//! The experiment daemon: HTTP front end over the shared-pool scheduler.
//!
//! Routes (all JSON, `Connection: close`):
//!
//! * `POST /jobs` — body is an [`ExperimentSpec`]; expands the spec,
//!   enqueues the job, replies `{"id": n}`. Admission-controlled: the
//!   tenant (`X-Tenant` header, `"default"` otherwise) is charged one
//!   token-bucket credit and the active-job queue depth is checked; a
//!   refusal is `429 Too Many Requests` with `Retry-After`. An optional
//!   `X-Deadline-Ms` header sets the job's wall-clock deadline.
//! * `GET /jobs` — every job's status, in submission order.
//! * `GET /jobs/<id>` — one job's live status (per-cell progress).
//! * `GET /jobs/<id>/report` — the finished [`ExperimentReport`] JSON,
//!   byte-equal to the `out/<name>.json` artifact the same spec produces
//!   in process; `409` while the job is still running.
//! * `DELETE /jobs/<id>` — cancels via the session's token; replies with
//!   the job's status.
//! * `GET /healthz` — liveness probe.
//!
//! Fleet routes (the `cdcs-runner` worker protocol, see [`crate::fleet`]):
//!
//! * `POST /fleet/runners` — register; body [`RunnerHello`], reply
//!   [`crate::protocol::RegisterReply`] with the lease TTL to honor.
//! * `POST /fleet/runners/<id>/poll` — lease at most one unit of work.
//! * `DELETE /fleet/runners/<id>` — graceful deregistration (held work
//!   re-queues immediately).
//! * `POST /fleet/leases/<id>/heartbeat` — keep a lease alive; `410` once
//!   the lease is revoked (abandon the work).
//! * `POST /fleet/leases/<id>/result` — deliver a lease's result; `410`
//!   if the lease was revoked first (the result is discarded as stale).
//! * `GET /fleet` — fleet status: runners, leases, requeue counters.
//!
//! Degradation is designed, not accidental: oversized bodies are `413`
//! before any allocation, malformed requests are `400` without wedging
//! their connection thread, overload is `429` + `Retry-After` (never an
//! unbounded queue), a panicking cell fails its own job while every other
//! tenant's jobs keep running, and deadlines/watchdogs move stuck jobs to
//! a terminal state. A [`FaultPlan`] can inject each of these failures
//! deterministically for the e2e suite and the CI smoke job.

use crate::admission::{Admission, TenantLimit, DEFAULT_TENANT};
use crate::faults::{ConnFault, FaultPlan};
use crate::fleet::{Fleet, FleetConfig};
use crate::http::{read_request, write_response, Request, RequestError};
use crate::job::{Job, JobOptions};
use crate::protocol::{
    AckReply, ErrorReply, JobList, JobStatus, LeaseResult, PollReply, RunnerHello, SubmitReply,
};
use crate::scheduler::Scheduler;
use cdcs_bench::exp::ExperimentSpec;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon configuration. [`ServerConfig::new`] gives the permissive
/// defaults (no admission limits, no watchdog, no faults) — the shape the
/// pre-hardening daemon had.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port `0` for ephemeral).
    pub addr: String,
    /// Local worker pool size. `0` is legal and means *fleet-only*: no
    /// local workers; every unit of work is leased to remote runners.
    pub workers: usize,
    /// Per-tenant submission rate limit.
    pub tenant_limit: Option<TenantLimit>,
    /// Cap on queued-or-running jobs.
    pub queue_cap: Option<usize>,
    /// Per-cell wall-clock watchdog: a cell running longer than this
    /// fails its job (the pool slot frees once the cell returns).
    pub cell_timeout: Option<Duration>,
    /// Fault-injection plan (empty by default).
    pub faults: Arc<FaultPlan>,
    /// Runner-fleet knobs (lease/runner TTLs, ring shape).
    pub fleet: FleetConfig,
}

impl ServerConfig {
    /// Permissive defaults on `addr` with `workers` pool threads.
    pub fn new(addr: impl Into<String>, workers: usize) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            workers,
            tenant_limit: None,
            queue_cap: None,
            cell_timeout: None,
            faults: Arc::new(FaultPlan::default()),
            fleet: FleetConfig::default(),
        }
    }
}

/// How a shutdown went: which threads had to be abandoned rather than
/// joined cleanly, plus every job's final status.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Threads whose join reported a panic (0 in healthy operation — the
    /// pool contains every unwind).
    pub panicked_threads: usize,
    /// Final status of every job the daemon accepted.
    pub jobs: Vec<JobStatus>,
}

struct ServerState {
    jobs: Mutex<Vec<Arc<Job>>>,
    next_id: AtomicU64,
    sched: Arc<Scheduler>,
    admission: Admission,
    fleet: Fleet,
    pool_workers: usize,
    cell_timeout: Option<Duration>,
    faults: Arc<FaultPlan>,
    stopping: AtomicBool,
}

/// A running daemon: worker pool + accept loop + watchdog. Dropping (or
/// [`JobServer::shutdown`]) stops accepting, stops the pool, and joins
/// every thread; running cells finish first.
pub struct JobServer {
    state: Arc<ServerState>,
    addr: std::net::SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl JobServer {
    /// Binds `addr` (e.g. `127.0.0.1:7077`, or port `0` for an ephemeral
    /// port) and starts `workers` pool threads plus the accept loop, with
    /// permissive defaults (no limits, no faults).
    ///
    /// # Errors
    ///
    /// Returns bind errors.
    pub fn start(addr: &str, workers: usize) -> Result<JobServer, String> {
        JobServer::start_with(ServerConfig::new(addr, workers))
    }

    /// Binds and starts a daemon with the full configuration.
    ///
    /// # Errors
    ///
    /// Returns bind errors.
    pub fn start_with(config: ServerConfig) -> Result<JobServer, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        let state = Arc::new(ServerState {
            jobs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            sched: Arc::new(Scheduler::new()),
            admission: Admission::new(config.tenant_limit, config.queue_cap),
            fleet: Fleet::new(config.fleet, Arc::clone(&config.faults)),
            pool_workers: config.workers,
            cell_timeout: config.cell_timeout,
            faults: config.faults,
            stopping: AtomicBool::new(false),
        });
        // `workers == 0` starts no local pool: fleet-only execution.
        let mut threads = if state.pool_workers > 0 {
            state.sched.start_pool(state.pool_workers)
        } else {
            Vec::new()
        };
        let watchdog_state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || watchdog_state.watchdog_loop()));
        let accept_state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_state.stopping.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(mut stream) = stream else { continue };
                // One detached thread per connection, with I/O deadlines:
                // a client that connects and goes silent must never wedge
                // the accept loop (or `GET /healthz`) — it times out in
                // its own thread instead.
                let timeout = Some(Duration::from_secs(10));
                let _ = stream.set_read_timeout(timeout);
                let _ = stream.set_write_timeout(timeout);
                let conn_state = Arc::clone(&accept_state);
                std::thread::spawn(move || conn_state.handle(&mut stream));
            }
        }));
        Ok(JobServer {
            state,
            addr: local,
            threads,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The claim sequence so far (job ids, in claim order) — the fairness
    /// tests assert concurrent jobs alternate here.
    pub fn claim_log(&self) -> Vec<u64> {
        self.state.sched.claim_log()
    }

    /// Submits a spec directly (the HTTP-free path for embedding and
    /// tests). Bypasses tenant buckets but not the queue cap.
    ///
    /// # Errors
    ///
    /// Propagates spec-expansion errors and queue-cap refusals.
    pub fn submit(&self, spec: ExperimentSpec) -> Result<u64, String> {
        self.state
            .submit(spec, JobOptions::default())
            .map_err(|e| e.message)
    }

    /// Stops the accept loop and the pool (running cells finish, queued
    /// cells are abandoned) and joins every thread. A panicked thread is
    /// *reported*, never propagated: shutdown always completes.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.stop();
        self.join_threads()
    }

    /// Drain-mode shutdown: stops accepting, lets the pool finish every
    /// queued cell of every job, then joins. The report carries each
    /// job's final status.
    pub fn shutdown_drain(mut self) -> ShutdownReport {
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.sched.drain();
        // Unblock `listener.incoming()` with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.join_threads()
    }

    fn stop(&self) {
        self.state.stopping.store(true, Ordering::SeqCst);
        self.state.sched.stop();
        let _ = TcpStream::connect(self.addr);
    }

    fn join_threads(&mut self) -> ShutdownReport {
        let mut panicked = 0usize;
        for handle in self.threads.drain(..) {
            if handle.join().is_err() {
                panicked += 1;
            }
        }
        ShutdownReport {
            panicked_threads: panicked,
            jobs: self.state.lock_jobs().iter().map(|j| j.status()).collect(),
        }
    }

    /// Blocks the calling thread on the daemon's threads (the daemon
    /// binary's main thread parks here).
    pub fn join(mut self) {
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.stop();
        // Never panic in Drop: a panicked worker is already contained
        // (its job is Failed); a double panic here would abort.
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A submission refusal with its HTTP shape.
struct SubmitRefusal {
    status: u16,
    reason: &'static str,
    message: String,
    retry_after: Option<Duration>,
}

impl SubmitRefusal {
    fn bad_request(message: String) -> SubmitRefusal {
        SubmitRefusal {
            status: 400,
            reason: "Bad Request",
            message,
            retry_after: None,
        }
    }
}

impl ServerState {
    fn submit(&self, spec: ExperimentSpec, options: JobOptions) -> Result<u64, SubmitRefusal> {
        if self.stopping.load(Ordering::SeqCst) {
            return Err(SubmitRefusal {
                status: 503,
                reason: "Service Unavailable",
                message: "daemon is shutting down".into(),
                retry_after: Some(Duration::from_secs(1)),
            });
        }
        let tenant = if options.tenant.is_empty() {
            DEFAULT_TENANT
        } else {
            options.tenant.as_str()
        };
        let active = self.lock_jobs().iter().filter(|j| j.is_active()).count();
        self.admission
            .admit(tenant, active)
            .map_err(|refusal| SubmitRefusal {
                status: 429,
                reason: "Too Many Requests",
                message: refusal.reason,
                retry_after: Some(refusal.retry_after),
            })?;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let job = Arc::new(
            Job::new(id, spec, self.pool_workers, options).map_err(SubmitRefusal::bad_request)?,
        );
        self.lock_jobs().push(Arc::clone(&job));
        self.sched.enqueue(job);
        Ok(id)
    }

    fn job(&self, id: u64) -> Option<Arc<Job>> {
        self.lock_jobs().iter().find(|j| j.id == id).cloned()
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, Vec<Arc<Job>>> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Periodically enforces wall-clock limits no claim path would catch:
    /// job deadlines while nothing claims (queued or mid-flight jobs),
    /// the per-cell watchdog for stuck cells, and fleet lease/runner
    /// expiry (revoke-and-requeue).
    fn watchdog_loop(&self) {
        while !self.stopping.load(Ordering::SeqCst) {
            self.fleet.tick(&self.sched);
            let jobs: Vec<Arc<Job>> = self.lock_jobs().clone();
            for job in jobs {
                if !job.is_active() {
                    continue;
                }
                if job.deadline.is_some_and(|d| Instant::now() >= d) {
                    job.expire_deadline();
                    continue;
                }
                if let (Some(timeout), Some((cell, elapsed))) =
                    (self.cell_timeout, job.longest_running_cell())
                {
                    if elapsed > timeout {
                        job.fail_with(format!(
                            "cell {cell} exceeded the {}ms per-cell watchdog \
                             (running for {}ms)",
                            timeout.as_millis(),
                            elapsed.as_millis()
                        ));
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Handles one request; every response is written before the
    /// connection closes (unless a connection fault is injected).
    fn handle(&self, stream: &mut TcpStream) {
        match self.faults.on_conn() {
            Some(ConnFault::Drop) => return, // close without a byte
            Some(ConnFault::Garble) => {
                let _ = stream.write_all(b"\x07garbled by fault injection\x07");
                return;
            }
            None => {}
        }
        let reply = match read_request(stream) {
            Ok(request) => self.route(&request),
            Err(RequestError::TooLarge { declared }) => Reply::error(
                413,
                "Payload Too Large",
                &format!(
                    "declared body of {declared} bytes exceeds the \
                     {}-byte cap",
                    crate::http::MAX_BODY
                ),
            ),
            Err(RequestError::Malformed(error)) => Reply::error(400, "Bad Request", &error),
            // The transport died mid-read; writing a reply is best-effort
            // noise, but must never wedge or kill this thread.
            Err(RequestError::Io(error)) => Reply::error(400, "Bad Request", &error),
        };
        let _ = write_response(
            stream,
            reply.status,
            reply.reason,
            "application/json",
            &reply.headers,
            reply.body.as_bytes(),
        );
    }

    fn route(&self, request: &Request) -> Reply {
        let segments: Vec<&str> = request
            .path
            .split('?')
            .next()
            .unwrap_or("")
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => Reply::ok("{\"ok\":true}".into()),
            ("POST", ["jobs"]) => self.post_job(request),
            ("GET", ["jobs"]) => {
                let list = JobList {
                    jobs: self.lock_jobs().iter().map(|j| j.status()).collect(),
                };
                Reply::json(&list)
            }
            ("GET", ["jobs", id]) => self.with_job(id, |job| Reply::json(&job.status())),
            ("GET", ["jobs", id, "report"]) => self.with_job(id, |job| match job.report_json() {
                Some(json) => Reply::ok(json),
                None => Reply::error(
                    409,
                    "Conflict",
                    &format!(
                        "job {} is not finished (state {:?})",
                        job.id,
                        job.status().state
                    ),
                ),
            }),
            ("DELETE", ["jobs", id]) => self.with_job(id, |job| {
                job.cancel();
                job.try_finalize();
                Reply::json(&job.status())
            }),
            (method, ["jobs", ..]) => Reply::error(
                405,
                "Method Not Allowed",
                &format!("method {method} is not supported on {}", request.path),
            ),
            ("GET", ["fleet"]) => Reply::json(&self.fleet.status()),
            ("POST", ["fleet", "runners"]) => self.post_runner(request),
            ("POST", ["fleet", "runners", id, "poll"]) => {
                with_id(id, "runner", |id| match self.fleet.poll(id, &self.sched) {
                    Ok(lease) => Reply::json(&PollReply { lease }),
                    Err(message) => Reply::error(404, "Not Found", &message),
                })
            }
            ("DELETE", ["fleet", "runners", id]) => with_id(id, "runner", |id| {
                if self.fleet.deregister(id, &self.sched) {
                    Reply::json(&AckReply { ok: true })
                } else {
                    Reply::error(404, "Not Found", &format!("no runner {id}"))
                }
            }),
            ("POST", ["fleet", "leases", id, "heartbeat"]) => with_id(id, "lease", |id| {
                if self.fleet.heartbeat(id) {
                    Reply::json(&AckReply { ok: true })
                } else {
                    // 410: the lease was revoked (or completed) — the
                    // runner must abandon the work; its unit is already
                    // re-queued.
                    Reply::gone(&AckReply { ok: false })
                }
            }),
            ("POST", ["fleet", "leases", id, "result"]) => with_id(id, "lease", |id| {
                let body: LeaseResult = match parse_body(&request.body) {
                    Ok(body) => body,
                    Err(e) => {
                        return Reply::error(400, "Bad Request", &format!("parsing result: {e}"))
                    }
                };
                if self.fleet.result(id, body) {
                    Reply::json(&AckReply { ok: true })
                } else {
                    // Stale: the lease was revoked before the result
                    // arrived; the unit re-ran (or will) elsewhere.
                    Reply::gone(&AckReply { ok: false })
                }
            }),
            (method, ["fleet", ..]) => Reply::error(
                405,
                "Method Not Allowed",
                &format!("method {method} is not supported on {}", request.path),
            ),
            _ => Reply::error(
                404,
                "Not Found",
                &format!("no route for {} {}", request.method, request.path),
            ),
        }
    }

    fn post_job(&self, request: &Request) -> Reply {
        let text = match std::str::from_utf8(&request.body) {
            Ok(text) => text,
            Err(e) => return Reply::error(400, "Bad Request", &format!("body is not UTF-8: {e}")),
        };
        let spec: ExperimentSpec = match serde_json::from_str(text) {
            Ok(spec) => spec,
            Err(e) => {
                return Reply::error(400, "Bad Request", &format!("parsing spec: {e}"));
            }
        };
        let deadline = match request.header("x-deadline-ms") {
            Some(raw) => match raw.parse::<u64>() {
                Ok(ms) => Some(Instant::now() + Duration::from_millis(ms)),
                Err(e) => {
                    return Reply::error(
                        400,
                        "Bad Request",
                        &format!("bad X-Deadline-Ms {raw:?}: {e}"),
                    )
                }
            },
            None => None,
        };
        let options = JobOptions {
            tenant: request.header("x-tenant").unwrap_or("").to_string(),
            deadline,
            faults: Some(Arc::clone(&self.faults)),
        };
        match self.submit(spec, options) {
            Ok(id) => Reply {
                status: 201,
                reason: "Created",
                headers: Vec::new(),
                body: serde_json::to_string(&SubmitReply { id }).expect("submit reply serializes"),
            },
            Err(refusal) => {
                let mut reply = Reply::error(refusal.status, refusal.reason, &refusal.message);
                if let Some(wait) = refusal.retry_after {
                    // Retry-After is delta-seconds; round up so a client
                    // that sleeps exactly this long finds a token.
                    reply
                        .headers
                        .push(("Retry-After", wait.as_secs_f64().ceil().to_string()));
                }
                reply
            }
        }
    }

    fn post_runner(&self, request: &Request) -> Reply {
        if self.stopping.load(Ordering::SeqCst) {
            return Reply::error(503, "Service Unavailable", "daemon is shutting down");
        }
        let hello: RunnerHello = if request.body.is_empty() {
            RunnerHello::default()
        } else {
            match parse_body(&request.body) {
                Ok(hello) => hello,
                Err(e) => return Reply::error(400, "Bad Request", &format!("parsing hello: {e}")),
            }
        };
        let reply = self.fleet.register(&hello.name);
        Reply {
            status: 201,
            reason: "Created",
            headers: Vec::new(),
            body: serde_json::to_string(&reply).expect("register reply serializes"),
        }
    }

    fn with_job(&self, id: &str, f: impl FnOnce(&Job) -> Reply) -> Reply {
        let Ok(id) = id.parse::<u64>() else {
            return Reply::error(400, "Bad Request", &format!("bad job id {id:?}"));
        };
        match self.job(id) {
            Some(job) => f(&job),
            None => Reply::error(404, "Not Found", &format!("no job {id}")),
        }
    }
}

/// Parses a JSON request body (UTF-8 checked first).
fn parse_body<T: for<'de> serde::Deserialize<'de>>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("body is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Parses a numeric path segment, naming `what` in the error.
fn with_id(raw: &str, what: &str, f: impl FnOnce(u64) -> Reply) -> Reply {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => Reply::error(400, "Bad Request", &format!("bad {what} id {raw:?}")),
    }
}

struct Reply {
    status: u16,
    reason: &'static str,
    headers: Vec<(&'static str, String)>,
    body: String,
}

impl Reply {
    fn ok(body: String) -> Reply {
        Reply {
            status: 200,
            reason: "OK",
            headers: Vec::new(),
            body,
        }
    }

    fn json<T: serde::Serialize>(value: &T) -> Reply {
        Reply::ok(serde_json::to_string(value).expect("reply serializes"))
    }

    /// `410 Gone` with a JSON body: a lease/runner that no longer exists.
    fn gone<T: serde::Serialize>(value: &T) -> Reply {
        Reply {
            status: 410,
            reason: "Gone",
            headers: Vec::new(),
            body: serde_json::to_string(value).expect("reply serializes"),
        }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Reply {
        Reply {
            status,
            reason,
            headers: Vec::new(),
            body: serde_json::to_string(&ErrorReply {
                error: message.to_string(),
            })
            .expect("error reply serializes"),
        }
    }
}

//! Lease bookkeeping for the runner fleet.
//!
//! A lease is the fleet's unit of at-most-once-in-flight accounting: one
//! claimed [`WorkUnit`] handed to one runner, alive only while heartbeats
//! keep landing. The table is a plain struct — **no interior locking** —
//! because it lives inside the fleet's single mutex ([`crate::fleet`]);
//! that one lock is what makes grant / heartbeat / result / revocation
//! mutually exclusive, which is the whole exactly-once argument: a result
//! POST only counts if `complete` still finds the lease, and revocation
//! removes it under the same lock, so a revoked lease's late result is
//! detectably stale and discarded (its cell already re-queued and re-run
//! elsewhere — byte-equal either way, so the race is harmless even in
//! principle).

use crate::job::{Job, WorkUnit};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One outstanding lease.
pub struct Lease {
    /// The runner holding it.
    pub runner: u64,
    /// The job the unit belongs to.
    pub job: Arc<Job>,
    /// The leased unit.
    pub unit: WorkUnit,
    /// Last heartbeat (grant counts as one).
    pub last_beat: Instant,
}

/// All outstanding leases, keyed by lease id.
#[derive(Default)]
pub struct LeaseTable {
    leases: BTreeMap<u64, Lease>,
    next_id: u64,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        LeaseTable::default()
    }

    /// Grants a new lease and returns its id.
    pub fn grant(&mut self, runner: u64, job: Arc<Job>, unit: WorkUnit) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.leases.insert(
            id,
            Lease {
                runner,
                job,
                unit,
                // lint: allow(determinism) — lease liveness is wall-clock
                // bookkeeping; no SimResult byte depends on it.
                last_beat: Instant::now(),
            },
        );
        id
    }

    /// Records a heartbeat. `false` means the lease no longer exists
    /// (revoked or completed) — the runner should abandon the work.
    pub fn beat(&mut self, lease_id: u64) -> bool {
        match self.leases.get_mut(&lease_id) {
            Some(lease) => {
                // lint: allow(determinism) — heartbeat timestamps only
                // gate revocation, never results.
                lease.last_beat = Instant::now();
                true
            }
            None => false,
        }
    }

    /// Removes and returns a lease on result delivery. `None` means the
    /// lease was already revoked: the result is stale and must be
    /// discarded (its unit is re-queued, possibly already re-run).
    pub fn complete(&mut self, lease_id: u64) -> Option<Lease> {
        self.leases.remove(&lease_id)
    }

    /// Removes every lease whose heartbeat window has lapsed and returns
    /// them for re-queueing.
    pub fn revoke_expired(&mut self, ttl: Duration) -> Vec<Lease> {
        let expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.last_beat.elapsed() > ttl)
            .map(|(id, _)| *id)
            .collect();
        expired
            .into_iter()
            .filter_map(|id| self.leases.remove(&id))
            .collect()
    }

    /// Removes every lease held by `runner` (it expired or deregistered)
    /// and returns them for re-queueing.
    pub fn revoke_runner(&mut self, runner: u64) -> Vec<Lease> {
        let held: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.runner == runner)
            .map(|(id, _)| *id)
            .collect();
        held.into_iter()
            .filter_map(|id| self.leases.remove(&id))
            .collect()
    }

    /// Outstanding lease count.
    pub fn active(&self) -> usize {
        self.leases.len()
    }

    /// Outstanding leases held by `runner`.
    pub fn active_for(&self, runner: u64) -> usize {
        self.leases.values().filter(|l| l.runner == runner).count()
    }
}

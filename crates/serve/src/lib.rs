#![forbid(unsafe_code)]
//! `cdcs-serve`: a spec-serving experiment daemon over streaming grid
//! sessions.
//!
//! The execution API used to be one blocking `run_grid` wave per process.
//! This crate turns the machine into a long-running service in the shape
//! the paper's co-scheduling pitch implies (and elastic cache services
//! like CoT/DistCache motivate): a daemon that accepts typed
//! [`cdcs_bench::exp::ExperimentSpec`]s as JSON, schedules their cells
//! **fairly across one shared worker pool** (round-robin over concurrent
//! jobs, each cell claimed from a [`cdcs_sim::GridSession`]), streams
//! per-cell progress, supports cancellation, and serves finished
//! [`cdcs_bench::exp::ExperimentReport`]s byte-equal to the `out/`
//! artifacts the same specs produce in process.
//!
//! The daemon is hardened for multi-tenant traffic: [`admission`] bounds
//! overload (per-tenant token buckets + a queue-depth cap → `429` +
//! `Retry-After`), jobs carry optional wall-clock deadlines enforced
//! through the session's cancellation machinery (plus a per-cell
//! watchdog), panics anywhere in job execution are contained to the job
//! that caused them, and [`faults`] can deterministically inject cell
//! panics, slow cells, and dropped/garbled connections to prove each
//! degradation mode end to end.
//!
//! Two binaries ship with the crate:
//!
//! * `cdcs-serve` — the daemon (`--addr`, `--workers`, admission and
//!   watchdog knobs, `CDCS_FAULT`);
//! * `cdcs` — the client: `submit` / `status` / `report` / `cancel` /
//!   `run` subcommands speaking the JSON protocol in [`protocol`], with
//!   bounded exponential-backoff retry on transient failures.
//!
//! Everything is dependency-free `std::net` HTTP/1.1 ([`http`]) over the
//! vendored `serde_json` — the workspace still builds fully offline.

pub mod admission;
pub mod client;
pub mod faults;
pub mod fleet;
pub mod http;
pub mod job;
pub mod lease;
pub mod protocol;
pub mod ring;
pub mod runner;
pub mod scheduler;
pub mod server;

pub use client::{Client, RetryPolicy};
pub use fleet::FleetConfig;
pub use runner::{Runner, RunnerHandle};
pub use server::{JobServer, ServerConfig};

//! Streaming-session semantics: results stream in completion order and
//! match the serial reference bit-for-bit; cancellation stops issuing new
//! cells and returns partial results cleanly; progress counters are live
//! and consistent.

use cdcs_sim::runner::{run_grid_serial, GridCell};
use cdcs_sim::{GridSession, Scheme, SimConfig};
use cdcs_workload::{MixSpec, WorkloadMix};

fn mix(names: &[&str]) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::Named(
        names.iter().map(|s| s.to_string()).collect(),
    ))
    .expect("mix")
}

fn five_cells() -> Vec<GridCell> {
    let mixes = [mix(&["calculix", "milc"]), mix(&["bzip2", "omnet"])];
    let mut cells = Vec::new();
    for m in &mixes {
        for scheme in [Scheme::SNuca, Scheme::cdcs()] {
            cells.push(GridCell::new(scheme, m.clone()));
        }
    }
    cells.push(GridCell::new(Scheme::SNuca, mixes[0].clone()).with_seed(99));
    cells
}

#[test]
fn streamed_results_match_serial_reference() {
    let config = SimConfig::small_test();
    let cells = five_cells();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");

    // A real multi-worker pool, even on single-core runners: the streaming
    // machinery (claim queue, delivery, join) is what's under test.
    let session = GridSession::spawn(&config, cells.clone(), 3);
    let mut seen = vec![false; cells.len()];
    let mut received = 0usize;
    while let Some(done) = session.recv() {
        assert!(!seen[done.index], "cell {} delivered twice", done.index);
        seen[done.index] = true;
        received += 1;
        let result = done.result.expect("cell runs");
        assert_eq!(
            result, serial[done.index],
            "cell {} diverged from the serial reference",
            done.index
        );
    }
    assert_eq!(received, cells.len(), "every cell streamed exactly once");
    let progress = session.progress();
    assert!(progress.finished());
    assert_eq!(progress.completed, cells.len());
}

#[test]
fn externally_driven_session_streams_in_claim_order() {
    let config = SimConfig::small_test();
    let cells = five_cells();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");
    let session = GridSession::queued(&config, cells.clone());

    // Drive two cells by hand, interleaving claims with receives.
    let first = session.try_claim().expect("cell 0");
    assert_eq!(first, 0);
    session.run_claimed(first);
    let done = session.recv().expect("first result");
    assert_eq!(done.index, 0);
    assert_eq!(done.result.expect("runs"), serial[0]);

    let progress = session.progress();
    assert_eq!((progress.issued, progress.completed), (1, 1));
    assert!(!progress.finished());

    session.drive();
    let remaining: Vec<usize> = std::iter::from_fn(|| session.recv())
        .map(|d| d.index)
        .collect();
    assert_eq!(remaining, vec![1, 2, 3, 4], "single driver preserves order");
}

#[test]
fn cancelled_session_stops_issuing_and_returns_partial_results() {
    let config = SimConfig::small_test();
    let cells = five_cells();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");
    let session = GridSession::queued(&config, cells.clone());
    let token = session.cancel_token();

    // Two cells complete, then the job is cancelled.
    for _ in 0..2 {
        let i = session.try_claim().expect("claimable");
        session.run_claimed(i);
    }
    assert!(!token.is_cancelled());
    token.cancel();
    assert!(token.is_cancelled());
    assert!(
        session.try_claim().is_none(),
        "cancelled sessions issue no new cells"
    );

    let progress = session.progress();
    assert!(progress.cancelled);
    assert_eq!((progress.issued, progress.completed), (2, 2));
    assert!(progress.finished(), "nothing in flight after cancellation");

    let slots = session.join();
    assert_eq!(slots.len(), cells.len());
    for (i, slot) in slots.iter().enumerate() {
        match slot {
            Some(result) if i < 2 => {
                assert_eq!(result.as_ref().expect("ran"), &serial[i], "cell {i}");
            }
            None if i >= 2 => {}
            other => panic!("cell {i}: unexpected slot {other:?}"),
        }
    }
}

#[test]
fn cancelling_mid_flight_delivers_in_flight_cells() {
    let config = SimConfig::small_test();
    let cells = five_cells();
    // Cancel as soon as the first result lands: workers finish what they
    // claimed; nothing new is issued afterwards.
    let session = GridSession::spawn(&config, cells.clone(), 2);
    let token = session.cancel_token();
    let first = session.recv().expect("at least one cell completes");
    token.cancel();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");
    assert_eq!(first.result.expect("ran"), serial[first.index]);
    let slots = session.join();
    let completed = slots.iter().flatten().count();
    assert!(completed >= 1, "the received cell is accounted for");
    for (i, result) in slots.iter().enumerate() {
        if let Some(r) = result {
            assert_eq!(r.as_ref().expect("ran"), &serial[i], "cell {i}");
        }
    }
}

#[test]
fn empty_session_finishes_immediately() {
    let config = SimConfig::small_test();
    let session = GridSession::spawn(&config, Vec::new(), 4);
    assert!(session.progress().finished());
    assert!(session.recv().is_none());
    assert!(session.join().is_empty());
}

#[test]
fn expired_deadline_stops_issuing_and_is_distinguishable_from_cancel() {
    use cdcs_sim::SessionOptions;
    use std::time::{Duration, Instant};

    let config = SimConfig::small_test();
    let cells = five_cells();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");

    // One cell completes before the deadline passes; the rest never issue.
    let session = GridSession::queued_with(
        &config,
        cells.clone(),
        SessionOptions {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..SessionOptions::default()
        },
    );
    let i = session.try_claim().expect("claimable before the deadline");
    session.run_claimed(i);
    assert!(!session.deadline_exceeded());

    // A second session whose deadline is already in the past.
    let expired = GridSession::queued_with(
        &config,
        cells.clone(),
        SessionOptions {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..SessionOptions::default()
        },
    );
    assert!(!expired.deadline_exceeded(), "unobserved until a claim");
    assert!(
        expired.try_claim().is_none(),
        "expired sessions issue nothing"
    );
    assert!(expired.deadline_exceeded());
    let progress = expired.progress();
    assert!(progress.cancelled, "expiry behaves as cancellation");
    assert!(progress.finished());
    assert!(expired.recv().is_none(), "the stream terminates cleanly");

    // The live session still works and its result matches the reference.
    let done = session.recv().expect("pre-deadline cell delivered");
    assert_eq!(done.result.expect("ran"), serial[done.index]);
}

#[test]
fn cell_hook_panics_fail_only_that_cell() {
    use cdcs_sim::SessionOptions;
    use std::sync::Arc;

    let config = SimConfig::small_test();
    let cells = five_cells();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");
    let session = GridSession::queued_with(
        &config,
        cells.clone(),
        SessionOptions {
            cell_hook: Some(Arc::new(|index| {
                if index == 1 {
                    panic!("injected fault in cell {index}");
                }
            })),
            ..SessionOptions::default()
        },
    );
    session.drive();
    let slots = session.join();
    for (i, slot) in slots.into_iter().enumerate() {
        let result = slot.expect("every cell issued");
        if i == 1 {
            let err = result.expect_err("hooked cell fails");
            assert_eq!(err, "cell 1 panicked: injected fault in cell 1");
        } else {
            assert_eq!(result.expect("clean cell runs"), serial[i], "cell {i}");
        }
    }
}

#[test]
fn requeued_cells_are_reclaimed_before_fresh_indices() {
    let config = SimConfig::small_test();
    let cells = five_cells();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");
    let session = GridSession::queued(&config, cells.clone());

    // Claim two cells; "lose" the first lease (revocation) and keep the
    // second in flight.
    let a = session.try_claim().expect("cell 0");
    let b = session.try_claim().expect("cell 1");
    assert_eq!((a, b), (0, 1));
    session.requeue(a);
    let progress = session.progress();
    assert_eq!(
        (progress.issued, progress.completed),
        (1, 0),
        "requeue rolls the claim back"
    );

    // The revoked index is handed out again before any fresh cell.
    let again = session.try_claim().expect("requeued cell");
    assert_eq!(again, a, "revoked cell outranks fresh indices");
    session.run_claimed(again);
    session.run_claimed(b);
    session.drive();

    let slots = session.join();
    for (i, slot) in slots.into_iter().enumerate() {
        let result = slot.expect("every cell issued");
        assert_eq!(result.expect("ran"), serial[i], "cell {i}");
    }
}

#[test]
fn external_delivery_is_indistinguishable_from_local_execution() {
    let config = SimConfig::small_test();
    let cells = five_cells();
    let serial = run_grid_serial(&config, &cells).expect("serial grid");
    let session = GridSession::queued(&config, cells.clone());

    // A "remote runner": claim a cell, execute it from the shipped
    // (config, cell) pair alone, and deliver the result externally.
    let i = session.try_claim().expect("claimable");
    let remote = cdcs_sim::runner::run_cell(session.config(), &session.cells()[i]);
    session.deliver(i, remote);

    let done = session.recv().expect("delivered result streams");
    assert_eq!(done.index, i);
    assert_eq!(done.result.expect("ran"), serial[i]);
    let progress = session.progress();
    assert_eq!((progress.issued, progress.completed), (1, 1));
    assert!(!progress.finished(), "fresh cells remain");

    session.drive();
    assert!(session.progress().finished());
}

#[test]
fn construction_errors_stream_per_cell() {
    let mut config = SimConfig::small_test();
    config.bank_lines = 0; // invalid: every cell errors
    let cells = vec![GridCell::new(Scheme::SNuca, mix(&["milc"]))];
    let session = GridSession::queued(&config, cells);
    session.drive();
    let done = session.recv().expect("error is still a delivery");
    assert!(done.result.is_err());
}

//! Denominator audit for `SimResult` / `metrics.rs` / `energy.rs`: no
//! derived ratio may emit NaN or ±inf when a thread records zero LLC
//! accesses in a cell (an almost-no-misses app whose interval budget
//! floors to zero for the whole run) or when a streaming VC fully bypasses
//! the LLC (a partitioned scheme allocating it nothing). Every division in
//! the metrics surface is expected to guard its denominator and return 0.0
//! instead.

use cdcs_sim::{Scheme, SimConfig, SimResult, Simulation};
use cdcs_workload::{AppProfile, Pattern, WorkloadMix};

/// A process whose APKI is so low that `budget = ipc × interval × apki /
/// 1000` floors to zero every interval: the thread retires instructions
/// but never issues one LLC access.
fn no_access_app() -> AppProfile {
    AppProfile::single_threaded("idle", 1e-7, 1.0, 1.0, Pattern::Hot { lines: 64 })
}

/// A streaming app whose footprint dwarfs the chip: under partitioned
/// schemes its VC is the zero-allocation (bypassing) candidate.
fn streaming_app() -> AppProfile {
    AppProfile::single_threaded("stream", 40.0, 1.5, 4.0, Pattern::Scan { lines: 4_000_000 })
}

fn fitting_app() -> AppProfile {
    AppProfile::single_threaded("fit", 15.0, 1.8, 2.0, Pattern::Hot { lines: 2048 })
}

fn assert_all_finite(r: &SimResult, what: &str) {
    let fin = |x: f64, name: &str| {
        assert!(x.is_finite(), "{what}: {name} = {x} is not finite");
    };
    for t in &r.threads {
        let ctx = format!("{what}/{}", t.app);
        fin(t.ipc(), &format!("{ctx} ipc"));
        fin(t.mpki(), &format!("{ctx} mpki"));
        fin(t.amat(), &format!("{ctx} amat"));
        fin(t.on_chip_per_access(), &format!("{ctx} on_chip"));
        fin(t.off_chip_per_access(), &format!("{ctx} off_chip"));
        fin(t.hit_ratio(), &format!("{ctx} hit_ratio"));
    }
    for (p, perf) in r.process_perf().iter().enumerate() {
        fin(*perf, &format!("process_perf[{p}]"));
    }
    fin(r.mean_on_chip_latency(), "mean_on_chip_latency");
    fin(r.mean_off_chip_latency(), "mean_off_chip_latency");
    fin(r.system.aggregate_ipc(), "aggregate_ipc");
    fin(
        r.system.traffic_per_instruction(),
        "traffic_per_instruction",
    );
    fin(r.energy.total(), "energy total");
    fin(
        r.energy.per_instruction(r.system.instructions),
        "energy per_instruction",
    );
    // And the degenerate denominators explicitly:
    fin(r.energy.per_instruction(0.0), "energy per_instruction(0)");
}

#[test]
fn zero_access_thread_and_bypassing_vc_emit_finite_metrics() {
    for scheme in [
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ] {
        let mut config = SimConfig::small_test();
        config.scheme = scheme;
        let mix = WorkloadMix::new(vec![no_access_app(), streaming_app(), fitting_app()], 7);
        let r = Simulation::new(config, mix).expect("sim").run();
        // The premise must actually hold: the idle thread issued nothing.
        assert_eq!(
            r.threads[0].accesses,
            0,
            "{}: idle thread issued accesses; the guard test lost its subject",
            scheme.name()
        );
        assert!(r.threads[0].instructions > 0.0);
        // Zero-access ratios are defined as 0, not NaN.
        assert_eq!(r.threads[0].amat(), 0.0);
        assert_eq!(r.threads[0].hit_ratio(), 0.0);
        assert_eq!(r.threads[0].mpki(), 0.0);
        assert!(r.threads[0].ipc() > 0.0, "idle thread still retires");
        assert_all_finite(&r, &scheme.name());
    }
}

/// The all-threads-idle corner: every derived system ratio over an empty
/// measured window must still be finite (a mix this degenerate never runs
/// in the harness, but the metrics API is public).
#[test]
fn all_idle_mix_is_finite() {
    let mut config = SimConfig::small_test();
    config.scheme = Scheme::SNuca;
    let mix = WorkloadMix::new(vec![no_access_app(), no_access_app()], 3);
    let r = Simulation::new(config, mix).expect("sim").run();
    assert!(r.threads.iter().all(|t| t.accesses == 0));
    assert_all_finite(&r, "all-idle");
    assert_eq!(r.mean_on_chip_latency(), 0.0);
    assert_eq!(r.mean_off_chip_latency(), 0.0);
    assert_eq!(r.system.traffic_per_instruction() * 0.0, 0.0);
}

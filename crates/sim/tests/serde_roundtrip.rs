//! JSON round-trip golden tests for the simulator's serializable surface.
//!
//! The vendored serde was a panic-stub until the experiment-API redesign;
//! these tests pin the now-working pipeline end to end: derive → JSON
//! writer → JSON reader → derive, bit-exact for every float.

use cdcs_sim::{ConfigPatch, MonitorKind, MoveScheme, Scheme, SimConfig, Simulation};
use cdcs_workload::{MixSpec, WorkloadMix};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let compact = serde_json::to_string(value).expect("serialize");
    let pretty = serde_json::to_string_pretty(value).expect("serialize pretty");
    let from_pretty: T = serde_json::from_str(&pretty).expect("deserialize pretty");
    drop(from_pretty);
    serde_json::from_str(&compact).expect("deserialize")
}

#[test]
fn sim_config_round_trips() {
    for config in [
        SimConfig::default(),
        SimConfig::case_study(),
        SimConfig::small_test(),
        SimConfig {
            scheme: Scheme::cdcs(),
            move_scheme: MoveScheme::BulkInvalidate,
            monitor_kind: MonitorKind::Umon { ways: 256 },
            reconfig_benefit_factor: 0.125,
            ..SimConfig::default()
        },
    ] {
        assert_eq!(roundtrip(&config), config);
    }
}

#[test]
fn schemes_round_trip_through_json() {
    for scheme in [
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_clustered(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ] {
        let json = serde_json::to_string(&scheme).unwrap();
        let back: Scheme = serde_json::from_str(&json).unwrap();
        assert_eq!(back, scheme, "{json}");
    }
    // Unit variants are bare strings; payload variants single-key objects.
    assert_eq!(serde_json::to_string(&Scheme::SNuca).unwrap(), "\"SNuca\"");
    assert!(serde_json::to_string(&Scheme::cdcs())
        .unwrap()
        .starts_with("{\"Cdcs\":"));
}

#[test]
fn config_patch_round_trips() {
    let patch = ConfigPatch::named("umon-256")
        .with_monitor_kind(MonitorKind::Umon { ways: 256 })
        .with_epoch_cycles(2_000_000)
        .with_reconfig_benefit_factor(0.0);
    assert_eq!(roundtrip(&patch), patch);
    assert_eq!(roundtrip(&ConfigPatch::default()), ConfigPatch::default());
}

#[test]
fn sim_result_round_trips_bit_exactly() {
    let mut config = SimConfig::small_test();
    config.scheme = Scheme::cdcs();
    let mix = WorkloadMix::from_spec(&MixSpec::Named(vec!["omnet".into(), "milc".into()])).unwrap();
    let result = Simulation::new(config, mix).unwrap().run();
    let back = roundtrip(&result);
    // PartialEq on SimResult compares every counter, float, and trace
    // point exactly — this is the artifact-gate guarantee.
    assert_eq!(back, result);
    assert!(!result.ipc_trace.is_empty());
}

#[test]
fn unknown_fields_are_skipped_and_missing_fields_default() {
    let json = serde_json::to_string(&ConfigPatch::default()).unwrap();
    // Inject an unknown key: forward compatibility for hand-edited specs.
    let with_extra = json.replacen('{', "{\"future_knob\":[1,{\"x\":2}],", 1);
    let patch: ConfigPatch = serde_json::from_str(&with_extra).expect("unknown key skipped");
    assert_eq!(patch, ConfigPatch::default());
    // Every golden-struct field carries `#[serde(default)]` (the
    // golden-coupling lint), so configs written before a field existed keep
    // deserializing after it is added. Missing fields take their *type's*
    // default — deserialization is lenient, and `validate()` is the gate
    // that rejects nonsense (an all-defaults config has zero-capacity
    // banks).
    let cfg: SimConfig = serde_json::from_str("{}").expect("all fields defaultable");
    assert_eq!(cfg.mesh, cdcs_mesh::Mesh::new(8, 8));
    assert_eq!(cfg.monitor_kind, MonitorKind::Gmon { ways: 64 });
    assert_eq!(cfg.scheme, Scheme::SNuca);
    assert_eq!(cfg.move_scheme, MoveScheme::DemandMove);
    assert_eq!(cfg.bank_lines, 0);
    assert!(cfg.validate().is_err(), "lenient parse, strict validate");
}

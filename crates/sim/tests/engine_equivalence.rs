//! Golden test: the batched, table-driven engine produces **bit-identical**
//! results to the one-access-at-a-time reference path.
//!
//! The batched pipeline (`Simulation::run_interval_batched`) reorders *work*
//! — stream draws are hoisted per thread, distances come from precomputed
//! tables, per-access config reads are hoisted per interval — but must not
//! reorder *effects*: every shared structure (LLC, monitors, memory model,
//! controller interleave, traffic counters) sees the exact access sequence
//! the reference path issues. `SimResult` derives `PartialEq` over every
//! counter, trace point and f64 accumulator, so equality here is exact, not
//! approximate.

use cdcs_sim::{MoveScheme, Scheme, SimConfig, SimResult, Simulation};
use cdcs_workload::{MixSpec, WorkloadMix};

fn mix(names: &[&str]) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::Named(
        names.iter().map(|s| s.to_string()).collect(),
    ))
    .expect("known app names")
}

fn run(config: &SimConfig, names: &[&str], reference: bool) -> SimResult {
    let mut config = config.clone();
    config.reference_engine = reference;
    Simulation::new(config, mix(names)).expect("sim").run()
}

fn assert_paths_equal(config: &SimConfig, names: &[&str], what: &str) {
    let reference = run(config, names, true);
    let batched = run(config, names, false);
    assert_eq!(reference, batched, "batched path diverged: {what}");
}

/// ≥3 schemes × 2 mixes, bit-for-bit. The mixes cover single-threaded
/// private-only streams and a multi-threaded app with a shared VC (so the
/// Global/ProcessShared generation paths and shared-VC monitor interleaving
/// are exercised too).
#[test]
fn batched_engine_matches_reference_across_schemes_and_mixes() {
    let mixes: [&[&str]; 2] = [
        &["calculix", "milc"],
        &["omnet", "xalancbmk", "bzip2", "ilbdc"],
    ];
    let schemes = [
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ];
    for names in mixes {
        for scheme in schemes {
            let mut config = SimConfig::small_test();
            config.scheme = scheme;
            assert_paths_equal(&config, names, &format!("{} / {names:?}", scheme.name()));
        }
    }
}

/// The movement machinery variants drive the shadow-window / detour code in
/// `process_access`; pin those too.
#[test]
fn batched_engine_matches_reference_across_move_schemes() {
    for move_scheme in [
        MoveScheme::Instant,
        MoveScheme::BulkInvalidate,
        MoveScheme::DemandMove,
    ] {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::cdcs();
        config.move_scheme = move_scheme;
        // Apply every planned placement so reconfigurations (and their
        // demand moves / bulk pauses) actually happen in the window.
        config.reconfig_benefit_factor = 0.0;
        assert_paths_equal(
            &config,
            &["omnet", "milc", "calculix"],
            &format!("{move_scheme:?}"),
        );
    }
}

/// `run_trace` drives intervals without epoch logic (the Fig. 17 harness);
/// it must agree as well.
#[test]
fn batched_engine_matches_reference_on_traces() {
    let trace = |reference: bool| {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::cdcs();
        config.reference_engine = reference;
        Simulation::new(config, mix(&["omnet", "milc"]))
            .expect("sim")
            .run_trace(4, 6)
    };
    assert_eq!(trace(true), trace(false), "run_trace diverged");
}

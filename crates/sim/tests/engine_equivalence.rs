//! Golden test: the batched, table-driven engine produces **bit-identical**
//! results to the one-access-at-a-time reference path.
//!
//! The batched pipeline (`Simulation::run_interval_batched`) reorders *work*
//! — stream draws are hoisted per thread, distances come from precomputed
//! tables, per-access config reads are hoisted per interval — but must not
//! reorder *effects*: every shared structure (LLC, monitors, memory model,
//! controller interleave, traffic counters) sees the exact access sequence
//! the reference path issues. `SimResult` derives `PartialEq` over every
//! counter, trace point and f64 accumulator, so equality here is exact, not
//! approximate.

use cdcs_sim::{MoveScheme, Scheme, SimConfig, SimResult, Simulation};
use cdcs_workload::{MixSpec, WorkloadMix};

fn mix(names: &[&str]) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::Named(
        names.iter().map(|s| s.to_string()).collect(),
    ))
    .expect("known app names")
}

fn run(config: &SimConfig, names: &[&str], reference: bool) -> SimResult {
    let mut config = config.clone();
    config.reference_engine = reference;
    Simulation::new(config, mix(names)).expect("sim").run()
}

fn assert_paths_equal(config: &SimConfig, names: &[&str], what: &str) {
    let reference = run(config, names, true);
    let batched = run(config, names, false);
    assert_eq!(reference, batched, "batched path diverged: {what}");
}

/// ≥3 schemes × 2 mixes, bit-for-bit. The mixes cover single-threaded
/// private-only streams and a multi-threaded app with a shared VC (so the
/// Global/ProcessShared generation paths and shared-VC monitor interleaving
/// are exercised too).
#[test]
fn batched_engine_matches_reference_across_schemes_and_mixes() {
    let mixes: [&[&str]; 2] = [
        &["calculix", "milc"],
        &["omnet", "xalancbmk", "bzip2", "ilbdc"],
    ];
    let schemes = [
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ];
    for names in mixes {
        for scheme in schemes {
            let mut config = SimConfig::small_test();
            config.scheme = scheme;
            assert_paths_equal(&config, names, &format!("{} / {names:?}", scheme.name()));
        }
    }
}

/// The movement machinery variants drive the shadow-window / detour code in
/// `process_access`; pin those too.
#[test]
fn batched_engine_matches_reference_across_move_schemes() {
    for move_scheme in [
        MoveScheme::Instant,
        MoveScheme::BulkInvalidate,
        MoveScheme::DemandMove,
    ] {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::cdcs();
        config.move_scheme = move_scheme;
        // Apply every planned placement so reconfigurations (and their
        // demand moves / bulk pauses) actually happen in the window.
        config.reconfig_benefit_factor = 0.0;
        assert_paths_equal(
            &config,
            &["omnet", "milc", "calculix"],
            &format!("{move_scheme:?}"),
        );
    }
}

/// `run_trace` drives intervals without epoch logic (the Fig. 17 harness);
/// it must agree as well.
#[test]
fn batched_engine_matches_reference_on_traces() {
    let trace = |reference: bool| {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::cdcs();
        config.reference_engine = reference;
        Simulation::new(config, mix(&["omnet", "milc"]))
            .expect("sim")
            .run_trace(4, 6)
    };
    assert_eq!(trace(true), trace(false), "run_trace diverged");
}

/// A config whose intervals are large enough (≥ the engine's in-thread
/// fall-back threshold, `SHARD_SEQ_THRESHOLD` accesses) that the sharded
/// pipeline really spawns its fan-outs — otherwise multi-worker configs
/// would quietly drain on one worker and the test would prove less than
/// it claims. `assert_forces_fanout` keeps that premise honest.
fn sharded_config(scheme: Scheme) -> SimConfig {
    let mut config = SimConfig::small_test();
    config.scheme = scheme;
    // One long interval per epoch: even the 2-thread mix draws ~20 k+
    // accesses per interval, well past the fan-out threshold. Fewer epochs
    // keep the total work test-sized.
    config.epoch_cycles = 1_500_000;
    config.interval_cycles = 1_500_000;
    config.warmup_epochs = 1;
    config.measure_epochs = 2;
    config.intra_cell_threads = 0;
    config
}

/// Asserts that a run's *average* interval carried comfortably more than
/// the fan-out threshold, so the multi-worker sharded path was genuinely
/// exercised (the access counters accumulate over warm-up and measurement
/// alike, so total accesses / total intervals is the right average).
fn assert_forces_fanout(r: &SimResult, intervals: u64, what: &str) {
    let total: u64 = r.threads.iter().map(|t| t.accesses).sum();
    assert!(
        total / intervals >= 3 * cdcs_sim::SHARD_SEQ_THRESHOLD as u64 / 2,
        "{what}: {} accesses over {intervals} intervals no longer clears the \
         {}-access fan-out threshold with margin — grow the test's intervals",
        total,
        cdcs_sim::SHARD_SEQ_THRESHOLD
    );
}

fn run_cfg(config: &SimConfig, names: &[&str], intra_cell_threads: usize) -> SimResult {
    let mut config = config.clone();
    config.intra_cell_threads = intra_cell_threads;
    Simulation::new(config, mix(names)).expect("sim").run()
}

fn trace_cfg(config: &SimConfig, names: &[&str], intra_cell_threads: usize) -> SimResult {
    let mut config = config.clone();
    config.intra_cell_threads = intra_cell_threads;
    Simulation::new(config, mix(names))
        .expect("sim")
        .run_trace(1, 3)
}

/// Golden test for the bank-sharded pipeline: across all 4 schemes × both
/// mixes × both entry points (`run` and `run_trace`) × 1/2/4 shard
/// threads, results are **bit-identical** to the single-core batched
/// engine. The partition of work by home bank is fixed by the routes and
/// the reduction replays the serial drain order, so the worker count can
/// only change wall clock — this is the test that holds that claim.
#[test]
fn sharded_engine_matches_batched_across_schemes_mixes_and_threads() {
    let mixes: [&[&str]; 2] = [
        &["calculix", "milc"],
        &["omnet", "xalancbmk", "bzip2", "ilbdc"],
    ];
    let schemes = [
        Scheme::SNuca,
        Scheme::rnuca(),
        Scheme::jigsaw_random(),
        Scheme::cdcs(),
    ];
    for names in mixes {
        for scheme in schemes {
            let config = sharded_config(scheme);
            let batched_run = run_cfg(&config, names, 0);
            let batched_trace = trace_cfg(&config, names, 0);
            // 3 epochs × 1 interval each under `sharded_config`.
            assert_forces_fanout(&batched_run, 3, &format!("{} / {names:?}", scheme.name()));
            for threads in [1, 2, 4] {
                assert_eq!(
                    batched_run,
                    run_cfg(&config, names, threads),
                    "sharded run diverged: {} / {names:?} / {threads} threads",
                    scheme.name()
                );
                assert_eq!(
                    batched_trace,
                    trace_cfg(&config, names, threads),
                    "sharded run_trace diverged: {} / {names:?} / {threads} threads",
                    scheme.name()
                );
            }
        }
    }
}

/// Nested parallelism: `run_grid`'s cell-level fan-out with bank-sharded
/// cells inside must stay byte-identical to fully serial execution (outer
/// pool of 1, inner workers 0). The outer pool clamps the inner count on
/// narrow machines; the clamp must not change results either.
#[test]
fn nested_grid_with_sharded_cells_matches_serial() {
    use cdcs_sim::runner::{run_grid, run_grid_serial, GridCell};

    // Same large-interval config, so the cells' inner fan-outs really
    // spawn (the grid overrides the scheme per cell).
    let mut config = sharded_config(Scheme::SNuca);
    let mut cells = Vec::new();
    for names in [
        &["calculix", "milc"][..],
        &["omnet", "xalancbmk", "bzip2", "ilbdc"][..],
    ] {
        for scheme in [Scheme::SNuca, Scheme::cdcs()] {
            cells.push(GridCell::new(scheme, mix(names)));
        }
    }
    // Serial baseline: no outer fan-out, no inner sharding.
    let mut serial_cfg = config.clone();
    serial_cfg.intra_cell_threads = 0;
    let serial = run_grid_serial(&serial_cfg, &cells).expect("serial grid");
    // Outer pool of 4 workers, 2 shard threads inside every cell.
    config.intra_cell_threads = 2;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool");
    let nested = pool.install(|| run_grid(&config, &cells)).expect("grid");
    assert_eq!(nested.len(), serial.len());
    for (i, (n, s)) in nested.iter().zip(&serial).enumerate() {
        assert_eq!(n, s, "cell {i} diverged between nested-parallel and serial");
    }
}

//! Golden tests for the event-driven engine and trace record/replay.
//!
//! Three bit-exactness pins:
//!
//! 1. **Steady equivalence** — a steady-rate [`EventScript`] (no events)
//!    run through the event engine is *bit-identical* to the batched
//!    engine, across schemes and mixes. The event engine is the batched
//!    epoch/interval loop plus gates that are provably transparent when
//!    nothing fires (`x * 1.0` is bitwise `x` for finite IEEE doubles,
//!    `active` stays true, `idle_until` stays 0).
//! 2. **Record → replay** — a run recorded with `trace_record` and
//!    replayed from the trace alone (`trace_replay`, same config)
//!    reproduces the original [`SimResult`] bit-exactly: the cursor yields
//!    the recorded draws in order, so every downstream structure sees the
//!    identical access sequence.
//! 3. **Dynamic determinism** — a full scenario (arrival + burst + idle +
//!    departure) is a pure function of the spec: two runs serialize to the
//!    same bytes.
//!
//! The `CDCS_WRITE_TRACES=1` test at the bottom regenerates the committed
//! `specs/traces/calculix_milc` fixture that `specs::trace_replay()` (and
//! the CI dynamic smoke) replays.

use cdcs_sim::{EngineMode, Scheme, SimConfig, SimResult, Simulation};
use cdcs_workload::{EventScript, MixSpec, TimedEvent, WorkloadEvent, WorkloadMix};

fn mix(names: &[&str]) -> WorkloadMix {
    WorkloadMix::from_spec(&MixSpec::Named(
        names.iter().map(|s| s.to_string()).collect(),
    ))
    .expect("known app names")
}

fn run(config: SimConfig, names: &[&str]) -> SimResult {
    Simulation::new(config, mix(names)).expect("sim").run()
}

/// The committed trace fixture's recording config: `SimConfig::small_test`
/// shortened to the epochs `specs::trace_replay()` pins in its patch.
fn fixture_config() -> SimConfig {
    let mut config = SimConfig::small_test();
    config.epoch_cycles = 60_000;
    config.interval_cycles = 15_000;
    config.warmup_epochs = 1;
    config.measure_epochs = 1;
    config.scheme = Scheme::SNuca;
    config
}

const FIXTURE_DIR: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../specs/traces/calculix_milc"
);

#[test]
fn steady_event_engine_is_bit_identical_to_batched() {
    let mixes: [&[&str]; 2] = [&["calculix", "milc"], &["omnet", "xalancbmk", "ilbdc"]];
    for names in mixes {
        for scheme in [Scheme::SNuca, Scheme::cdcs()] {
            let mut batched = SimConfig::small_test();
            batched.scheme = scheme;
            let mut event = batched.clone();
            event.engine = EngineMode::Event;
            assert_eq!(event.events, EventScript::steady(), "steady = empty script");
            let a = run(batched, names);
            let b = run(event, names);
            assert_eq!(
                a,
                b,
                "event engine diverged on a steady script: {} / {names:?}",
                scheme.name()
            );
        }
    }
}

#[test]
fn record_then_replay_reproduces_the_run_bit_exactly() {
    let dir = std::env::temp_dir().join(format!("cdcs-trace-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        let mut record = SimConfig::small_test();
        record.scheme = scheme;
        record.warmup_epochs = 1;
        record.measure_epochs = 2;
        record.trace_record = dir.to_string_lossy().into_owned();
        let mut replay = record.clone();
        replay.trace_record = String::new();
        replay.trace_replay = dir.join("index.json").to_string_lossy().into_owned();

        // Recording is a passive tap: the run itself is unchanged.
        let recorded = run(record, &["calculix", "milc"]);
        // The replay takes its mix from the trace index; the mix argument
        // here is deliberately different to prove it is ignored.
        let replayed = Simulation::new(replay, mix(&["omnet"]))
            .expect("replay sim")
            .run();
        assert_eq!(
            recorded,
            replayed,
            "replay from the trace alone diverged: {}",
            scheme.name()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn dynamic_script() -> EventScript {
    EventScript {
        events: vec![
            TimedEvent {
                at_cycle: 60_000,
                event: WorkloadEvent::Arrival {
                    app: "omnet".into(),
                },
            },
            TimedEvent {
                at_cycle: 120_000,
                event: WorkloadEvent::RateBurst {
                    process: 1,
                    scale: 3.0,
                    duration: 90_000,
                },
            },
            TimedEvent {
                at_cycle: 210_000,
                event: WorkloadEvent::IdleGap {
                    process: 0,
                    duration: 45_000,
                },
            },
            TimedEvent {
                at_cycle: 300_000,
                event: WorkloadEvent::Departure { process: 1 },
            },
        ],
    }
}

fn dynamic_config(scheme: Scheme) -> SimConfig {
    let mut config = SimConfig::small_test();
    config.scheme = scheme;
    config.engine = EngineMode::Event;
    config.events = dynamic_script();
    config.epoch_cycles = 150_000;
    config.interval_cycles = 15_000;
    config.warmup_epochs = 1;
    config.measure_epochs = 2;
    config
}

#[test]
fn dynamic_scenario_is_deterministic_from_the_spec_alone() {
    for scheme in [Scheme::SNuca, Scheme::cdcs()] {
        let a = run(dynamic_config(scheme), &["calculix", "milc"]);
        let b = run(dynamic_config(scheme), &["calculix", "milc"]);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "two runs of the same scenario differ (byte-level)");
    }
}

#[test]
fn arrivals_extend_the_roster_and_start_inactive() {
    let result = run(dynamic_config(Scheme::cdcs()), &["calculix", "milc"]);
    // Base mix has 2 single-threaded processes; the scripted omnet arrival
    // is a third roster slot.
    assert_eq!(result.threads.len(), 3);
    let arrived = &result.threads[2];
    assert_eq!(arrived.app, "omnet");
    // Arrival at 60k, warmup ends at 150k: the thread is live for the whole
    // measured window and retires instructions.
    assert!(arrived.instructions > 0.0, "arrived thread never ran");
}

#[test]
fn departure_stops_a_thread_for_good() {
    // Depart process 1 during warmup: it must retire nothing measured.
    let mut config = SimConfig::small_test();
    config.scheme = Scheme::cdcs();
    config.engine = EngineMode::Event;
    config.warmup_epochs = 1;
    config.measure_epochs = 2;
    config.events = EventScript {
        events: vec![TimedEvent {
            at_cycle: 0,
            event: WorkloadEvent::Departure { process: 1 },
        }],
    };
    let result = run(config, &["calculix", "milc"]);
    let departed = &result.threads[1];
    assert_eq!(departed.instructions, 0.0);
    assert_eq!(departed.cycles, 0.0);
    assert!(result.threads[0].instructions > 0.0);
}

#[test]
fn idle_gaps_cost_cycles_not_instructions() {
    let steady = {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::SNuca;
        config.engine = EngineMode::Event;
        run(config, &["calculix", "milc"])
    };
    let idled = {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::SNuca;
        config.engine = EngineMode::Event;
        // Idle process 0 for two full measured epochs' worth of cycles.
        config.events = EventScript {
            events: vec![TimedEvent {
                at_cycle: 0,
                event: WorkloadEvent::IdleGap {
                    process: 0,
                    duration: u64::MAX / 2,
                },
            }],
        };
        run(config, &["calculix", "milc"])
    };
    let (s0, i0) = (&steady.threads[0], &idled.threads[0]);
    assert_eq!(s0.cycles, i0.cycles, "idle gaps still accrue cycles");
    assert_eq!(i0.instructions, 0.0, "idle threads retire nothing");
    assert!(s0.instructions > 0.0);
}

#[test]
fn rate_bursts_raise_a_processes_access_rate() {
    let burst = {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::SNuca;
        config.engine = EngineMode::Event;
        config.events = EventScript {
            events: vec![TimedEvent {
                at_cycle: 0,
                event: WorkloadEvent::RateBurst {
                    process: 0,
                    scale: 4.0,
                    duration: u64::MAX / 2,
                },
            }],
        };
        run(config, &["calculix", "milc"])
    };
    let steady = {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::SNuca;
        config.engine = EngineMode::Event;
        run(config, &["calculix", "milc"])
    };
    assert!(
        burst.threads[0].accesses > steady.threads[0].accesses,
        "a 4x burst must draw more accesses ({} vs {})",
        burst.threads[0].accesses,
        steady.threads[0].accesses
    );
    // The co-runner is untouched by the other process's burst budget.
    assert_eq!(burst.threads[1].app, steady.threads[1].app);
}

#[test]
fn phase_changes_scale_apki_permanently() {
    let phase = {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::SNuca;
        config.engine = EngineMode::Event;
        config.events = EventScript {
            events: vec![TimedEvent {
                at_cycle: 0,
                event: WorkloadEvent::PhaseChange {
                    process: 0,
                    apki_scale: 3.0,
                },
            }],
        };
        run(config, &["calculix", "milc"])
    };
    let steady = {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::SNuca;
        config.engine = EngineMode::Event;
        run(config, &["calculix", "milc"])
    };
    assert!(phase.threads[0].accesses > steady.threads[0].accesses);
}

/// Maintenance hook, not a check: `CDCS_WRITE_TRACES=1 cargo test -p
/// cdcs-sim --test events` rewrites the committed replay fixture from the
/// pinned recording config (the next test then verifies the result).
#[test]
fn regenerate_committed_trace_fixture_when_asked() {
    if std::env::var("CDCS_WRITE_TRACES").is_err() {
        return;
    }
    std::fs::remove_dir_all(FIXTURE_DIR).ok();
    let mut config = fixture_config();
    config.trace_record = FIXTURE_DIR.to_string();
    run(config, &["calculix", "milc"]);
}

#[test]
fn committed_trace_fixture_matches_its_recording_config() {
    let mut record = fixture_config();
    let dir = std::env::temp_dir().join(format!("cdcs-trace-fixture-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    record.trace_record = dir.to_string_lossy().into_owned();
    let recorded = run(record, &["calculix", "milc"]);

    // The committed fixture replays to the exact same result (so the
    // fixture is in lockstep with the recording config above — regenerate
    // with `CDCS_WRITE_TRACES=1`).
    let mut replay = fixture_config();
    replay.trace_replay = format!("{FIXTURE_DIR}/index.json");
    let replayed = Simulation::new(replay, mix(&["calculix", "milc"]))
        .expect("committed fixture loads")
        .run();
    assert_eq!(
        recorded, replayed,
        "specs/traces/calculix_milc drifted from its recording config"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! The shared NUCA LLC: banks, mapping, and reconfiguration machinery.
//!
//! Depending on the scheme, lines map to banks via address hashing (S-NUCA),
//! R-NUCA's class policy, or VC descriptors (Jigsaw/CDCS, §III). Partitioned
//! schemes assign one bank partition per VC. Reconfigurations relocate lines
//! using one of the §IV-H movement schemes: instant (idealized), bulk
//! invalidation (Jigsaw: pause + drop), or demand moves with background
//! invalidations (CDCS: shadow descriptors keep the old mapping live while
//! lines migrate on demand and a background walker cleans up).

use crate::scheme::MoveScheme;
use cdcs_cache::{hash, BankId, Line, PartitionId, PartitionedBank};
use cdcs_core::policy::{RNucaPolicy, RnucaClass};
use cdcs_core::{Placement, VcDescriptor};
use cdcs_mesh::{Mesh, TileId};
use cdcs_workload::StreamTarget;
use rustc_hash::FxHashMap;

/// How lines find their bank.
#[derive(Debug, Clone)]
pub(crate) enum Mapping {
    /// S-NUCA: hash over all banks.
    Hashed,
    /// R-NUCA: class-based policy; needs the accessing core for locality.
    RNuca(RNucaPolicy),
    /// Jigsaw/CDCS: per-VC descriptors; shadow descriptors stay live during
    /// incremental reconfigurations (§IV-H, Fig. 3).
    Vtb {
        /// Current descriptor per VC (`None` = zero allocation: bypass LLC).
        desc: Vec<Option<VcDescriptor>>,
        /// Previous-epoch descriptor per VC while a reconfiguration drains.
        shadow: Vec<Option<VcDescriptor>>,
        /// Whether shadow descriptors are consulted.
        shadow_active: bool,
    },
}

/// Where an access is headed, as a pure function of the current mapping
/// state — no bank or movement state is touched. The sharded engine routes
/// every access of an interval first (this is what partitions the batch by
/// home bank), then lets per-bank shards perform the stateful lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Route {
    /// Home bank under the current mapping. Meaningless on bypass.
    pub bank: BankId,
    /// The VC has no LLC allocation: the access goes straight to memory.
    pub bypass: bool,
    /// The old bank a miss would consult through the shadow descriptor
    /// (`None` outside a shadow window or when old and new homes agree).
    pub old_bank: Option<BankId>,
}

/// Result of one LLC lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LookupResult {
    /// Bank that served (or homed) the access. Meaningless on bypass.
    pub bank: BankId,
    /// Whether the line was found (including via a demand move).
    pub hit: bool,
    /// The VC has no LLC allocation: the access goes straight to memory.
    pub bypass: bool,
    /// The old bank consulted through the shadow descriptor, if any
    /// (accounts for the two-level lookup latency of Fig. 10).
    pub old_bank_checked: Option<BankId>,
    /// The access was served by a demand move from the old bank (§IV-H).
    pub demand_moved: bool,
    /// A line was evicted by the fill (writeback traffic to memory).
    pub evicted: bool,
}

/// Counters for the movement machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MoveStats {
    pub demand_moves: u64,
    pub background_invalidations: u64,
    pub bulk_invalidations: u64,
    pub instant_moves: u64,
}

/// The distributed LLC.
#[derive(Debug)]
pub(crate) struct Llc {
    banks: Vec<PartitionedBank>,
    mapping: Mapping,
    bank_lines: u64,
    /// Lines displaced by the last reconfiguration, still serveable from
    /// their old location via demand moves: line → old bank, sharded by the
    /// line's **new** home bank (a pure function of the address at insert
    /// time), so each entry is only ever probed by accesses homed at that
    /// bank — the per-bank shards of the parallel engine own disjoint maps.
    /// Fx-hashed — the maps are probed on every miss while a shadow window
    /// is open and bulk-filled at reconfigurations; nothing observes their
    /// iteration order (`retain` filters per entry, counters are sums).
    old_lines: Vec<FxHashMap<u64, BankId>>,
    /// Cycle at which the current shadow window started.
    shadow_start: u64,
    pub stats: MoveStats,
}

/// Bitflags of one shard-phase lookup outcome (see [`LlcShard`]): the
/// stateful half of a [`LookupResult`], packed for the per-bank outcome
/// queues the deterministic reduction consumes.
pub(crate) const OUT_HIT: u8 = 1;
pub(crate) const OUT_EVICTED: u8 = 1 << 1;
pub(crate) const OUT_DEMAND_MOVED: u8 = 1 << 2;

/// Reassembles the full [`LookupResult`] from an access's pure [`Route`]
/// and its shard-phase `OUT_*` outcome bits. Shared between the serial
/// access path and the sharded engine's reduction, so the two cannot
/// reconstruct results differently.
#[inline]
pub(crate) fn lookup_result(route: Route, out: u8) -> LookupResult {
    if route.bypass {
        return LookupResult {
            bank: BankId(0),
            hit: false,
            bypass: true,
            old_bank_checked: None,
            demand_moved: false,
            evicted: false,
        };
    }
    let demand_moved = out & OUT_DEMAND_MOVED != 0;
    let hit = out & OUT_HIT != 0;
    LookupResult {
        bank: route.bank,
        hit,
        bypass: false,
        // A plain hit reports no old-bank detour; only a miss in the new
        // bank pays the two-level lookup (Fig. 10), and a demand move is
        // such a miss served from the old bank.
        old_bank_checked: if hit && !demand_moved {
            None
        } else {
            route.old_bank
        },
        demand_moved,
        evicted: out & OUT_EVICTED != 0,
    }
}

/// Mutable borrow of one bank's worth of LLC state — the bank's partitions
/// plus the demand-move entries homed at it — handed to one worker of the
/// sharded engine. Shards of the same LLC touch disjoint state, so a rayon
/// fan-out over them is race-free by construction.
#[derive(Debug)]
pub(crate) struct LlcShard<'a> {
    bank: &'a mut PartitionedBank,
    old_lines: &'a mut FxHashMap<u64, BankId>,
    partitioned: bool,
    /// Demand moves served by this shard this interval; merged back into
    /// [`MoveStats`] in bank order after the fan-out (an integer partial
    /// sum, so the merge order cannot change the total).
    pub demand_moves: u64,
}

impl LlcShard<'_> {
    /// Performs the stateful half of [`Llc::access`] for an access already
    /// routed to this shard's bank: the lookup-and-fill plus the demand-move
    /// probe. `check_old` is the route's `old_bank.is_some()`. Returns the
    /// `OUT_*` outcome bits; combined with the precomputed [`Route`], they
    /// reconstruct the exact [`LookupResult`] the serial path produces.
    #[inline]
    pub fn access_routed(&mut self, vc: u32, line: Line, check_old: bool) -> u8 {
        let part = if self.partitioned {
            PartitionId(vc as u16)
        } else {
            PartitionId(0)
        };
        let (hit, evicted) = self.bank.access_insert(part, line);
        if hit {
            return OUT_HIT;
        }
        let mut out = 0u8;
        if check_old && self.old_lines.remove(&line.0).is_some() {
            // Old bank hit: the line moves to its new home (Fig. 10a).
            out |= OUT_HIT | OUT_DEMAND_MOVED;
            self.demand_moves += 1;
        }
        if evicted.is_some() {
            out |= OUT_EVICTED;
        }
        out
    }
}

impl Llc {
    /// Creates an unpartitioned LLC (S-NUCA / R-NUCA).
    pub fn unpartitioned(num_banks: usize, bank_lines: u64, rnuca: Option<RNucaPolicy>) -> Self {
        Llc {
            banks: (0..num_banks)
                .map(|_| PartitionedBank::unpartitioned(bank_lines as usize))
                .collect(),
            mapping: match rnuca {
                Some(p) => Mapping::RNuca(p),
                None => Mapping::Hashed,
            },
            bank_lines,
            old_lines: (0..num_banks).map(|_| FxHashMap::default()).collect(),
            shadow_start: 0,
            stats: MoveStats::default(),
        }
    }

    /// Creates a partitioned LLC (Jigsaw / CDCS) with `num_vcs` partitions
    /// per bank, initially empty (all capacities zero until the first
    /// [`reconfigure`](Self::reconfigure)).
    pub fn partitioned(num_banks: usize, bank_lines: u64, num_vcs: usize) -> Self {
        Llc {
            banks: (0..num_banks)
                .map(|_| PartitionedBank::new(bank_lines as usize, &vec![0; num_vcs]))
                .collect(),
            mapping: Mapping::Vtb {
                desc: vec![None; num_vcs],
                shadow: vec![None; num_vcs],
                shadow_active: false,
            },
            bank_lines,
            old_lines: (0..num_banks).map(|_| FxHashMap::default()).collect(),
            shadow_start: 0,
            stats: MoveStats::default(),
        }
    }

    /// Whether this LLC uses VC descriptors.
    #[allow(dead_code)] // exercised by tests and kept for harness inspection
    pub fn is_partitioned(&self) -> bool {
        matches!(self.mapping, Mapping::Vtb { .. })
    }

    /// Whether every access to `vc` currently bypasses the LLC (a
    /// partitioned mapping with no allocation for the VC). Lets the engine
    /// take a straight-to-memory fast path for whole runs of a streaming
    /// thread's accesses without consulting the descriptor per access.
    pub fn vc_bypasses(&self, vc: u32) -> bool {
        match &self.mapping {
            Mapping::Vtb { desc, .. } => desc[vc as usize].is_none(),
            _ => false,
        }
    }

    /// Routes an access under the current mapping without touching any
    /// state: the home bank, whether it bypasses, and the shadow-window old
    /// bank a miss would consult. Pure — the sharded engine calls this from
    /// many threads at once while planning an interval's bank shards, and
    /// [`Self::access`] resolves to exactly this route.
    pub fn route(
        &self,
        vc: u32,
        class: StreamTarget,
        core: TileId,
        mesh: &Mesh,
        line: Line,
    ) -> Route {
        match &self.mapping {
            Mapping::Hashed => Route {
                bank: BankId(hash::bucket(line.0, self.banks.len()) as u16),
                bypass: false,
                old_bank: None,
            },
            Mapping::RNuca(policy) => {
                let class = match class {
                    StreamTarget::ThreadPrivate => RnucaClass::Private,
                    StreamTarget::ProcessShared | StreamTarget::Global => RnucaClass::Shared,
                };
                let bank_tile = policy.bank_for(class, line, core, mesh);
                Route {
                    bank: BankId(bank_tile.0),
                    bypass: false,
                    old_bank: None,
                }
            }
            Mapping::Vtb {
                desc,
                shadow,
                shadow_active,
            } => {
                let Some(d) = &desc[vc as usize] else {
                    return Route {
                        bank: BankId(0),
                        bypass: true,
                        old_bank: None,
                    };
                };
                let bank = d.bank_for_line(line);
                let old_bank = if *shadow_active {
                    shadow[vc as usize]
                        .as_ref()
                        .map(|s| s.bank_for_line(line))
                        .filter(|&ob| ob != bank)
                } else {
                    None
                };
                Route {
                    bank,
                    bypass: false,
                    old_bank,
                }
            }
        }
    }

    /// Splits the LLC into per-bank shards for one parallel interval: each
    /// shard owns one bank's partitions and the demand-move entries homed
    /// at that bank. The caller merges each shard's `demand_moves` partial
    /// sum back via [`Self::add_demand_moves`] (in bank order, for a fixed
    /// reduction order) once the borrows end.
    pub fn bank_shards(&mut self) -> Vec<LlcShard<'_>> {
        let partitioned = matches!(self.mapping, Mapping::Vtb { .. });
        self.banks
            .iter_mut()
            .zip(self.old_lines.iter_mut())
            .map(|(bank, old_lines)| LlcShard {
                bank,
                old_lines,
                partitioned,
                demand_moves: 0,
            })
            .collect()
    }

    /// Folds shard-phase demand-move partial sums back into [`MoveStats`].
    pub fn add_demand_moves(&mut self, n: u64) {
        self.stats.demand_moves += n;
    }

    /// Looks up (and on miss, fills) `line` for the given access context.
    ///
    /// Decomposes as route-then-stateful-lookup: the pure [`Self::route`]
    /// picks the bank, and the same per-bank transition [`LlcShard`] runs
    /// in the parallel engine performs the lookup — so the serial and
    /// sharded paths cannot drift apart.
    pub fn access(
        &mut self,
        vc: u32,
        class: StreamTarget,
        core: TileId,
        mesh: &Mesh,
        line: Line,
    ) -> LookupResult {
        let route = self.route(vc, class, core, mesh, line);
        self.access_routed(vc, line, route)
    }

    /// The stateful half of [`Self::access`], given a precomputed route.
    pub fn access_routed(&mut self, vc: u32, line: Line, route: Route) -> LookupResult {
        if route.bypass {
            return lookup_result(route, 0);
        }
        let bank = route.bank;
        let partitioned = matches!(self.mapping, Mapping::Vtb { .. });
        let mut shard = LlcShard {
            bank: &mut self.banks[bank.index()],
            old_lines: &mut self.old_lines[bank.index()],
            partitioned,
            demand_moves: 0,
        };
        // Combined lookup-and-fill: a miss always fills this bank, and the
        // demand-move probe touches disjoint state, so one probe serves
        // both steps. Displaced lines are filed under their new home bank,
        // which is exactly `bank`.
        let out = shard.access_routed(vc, line, route.old_bank.is_some());
        self.stats.demand_moves += shard.demand_moves;
        lookup_result(route, out)
    }

    /// Applies a new placement (partitioned schemes only), relocating lines
    /// per the movement scheme. Returns the cycles all cores pause (non-zero
    /// only for bulk invalidations).
    ///
    /// # Panics
    ///
    /// Panics if called on an unpartitioned LLC.
    pub fn reconfigure(
        &mut self,
        placement: &Placement,
        move_scheme: MoveScheme,
        now_cycles: u64,
        bulk_pause: u64,
    ) -> u64 {
        let num_vcs = placement.num_vcs();
        // Any stragglers from the previous window are dropped now (their
        // background walk has long finished in practice; epochs far exceed
        // the walk window).
        self.stats.background_invalidations += self.pending_old_lines() as u64;
        for m in &mut self.old_lines {
            m.clear();
        }

        // New descriptors, preserving bucket assignments from the current
        // ones where possible to minimize line movement.
        let prev_desc: Vec<Option<VcDescriptor>> = match &self.mapping {
            Mapping::Vtb { desc, .. } => desc.clone(),
            _ => vec![None; num_vcs],
        };
        let new_desc: Vec<Option<VcDescriptor>> = (0..num_vcs)
            .map(|d| {
                let banks = placement.vc_banks(d as u32);
                if banks.is_empty() {
                    None
                } else {
                    Some(
                        VcDescriptor::from_allocation_stable(&banks, prev_desc[d].as_ref())
                            .expect("non-empty allocation builds a descriptor"),
                    )
                }
            })
            .collect();

        // Phase 1: pull every line whose home bank changes out of its old
        // partition *before* resizing — resizing first would evict the very
        // lines the movement machinery is supposed to relocate. Lines are
        // collected MRU-first per partition.
        let mut pause = 0;
        let mut instant_moves: Vec<(usize, PartitionId, Line)> = Vec::new();
        let mut lines_buf: Vec<Line> = Vec::new();
        for (d, desc) in new_desc.iter().enumerate().take(num_vcs) {
            let part = PartitionId(d as u16);
            match desc {
                None => {
                    // VC lost its allocation entirely: every resident line is
                    // invalidated. Wholesale partition clears replace the
                    // per-line walk — same lines dropped, same statistics,
                    // without a hash removal per line (this is the common
                    // bulk case: a streaming VC whose allocation goes to
                    // zero drops tens of thousands of lines here).
                    for b in 0..self.banks.len() {
                        let dropped = self.banks[b].clear_partition(part);
                        match move_scheme {
                            MoveScheme::BulkInvalidate => {
                                self.stats.bulk_invalidations += dropped;
                            }
                            _ => self.stats.background_invalidations += dropped,
                        }
                    }
                }
                Some(nd) => {
                    for b in 0..self.banks.len() {
                        self.banks[b].partition_lines_into(part, &mut lines_buf);
                        for &line in &lines_buf {
                            let nb = nd.bank_for_line(line);
                            if nb.index() == b {
                                continue; // stays put
                            }
                            self.banks[b].invalidate(part, line);
                            match move_scheme {
                                MoveScheme::Instant => {
                                    instant_moves.push((nb.index(), part, line));
                                }
                                MoveScheme::BulkInvalidate => {
                                    self.stats.bulk_invalidations += 1;
                                }
                                MoveScheme::DemandMove => {
                                    // Filed under the line's *new* home so
                                    // the probe on a miss at that bank (and
                                    // only there) finds it.
                                    self.old_lines[nb.index()].insert(line.0, BankId(b as u16));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Phase 2: apply the new partition sizes. Lines that stay in their
        // bank but exceed the shrunken allocation are ordinary LRU evictions
        // (in hardware, Vantage demotes them as the partition shrinks).
        let mut sizes: Vec<usize> = Vec::with_capacity(num_vcs);
        for (b, bank) in self.banks.iter_mut().enumerate() {
            sizes.clear();
            sizes.extend((0..num_vcs).map(|d| placement[(d, b)] as usize));
            bank.resize_partitions(&sizes);
        }

        // Phase 3 (instant moves only): refill relocated lines at their new
        // homes, LRU-first so recency order survives the move.
        for (b, part, line) in instant_moves.into_iter().rev() {
            self.banks[b].fill(part, line);
            self.stats.instant_moves += 1;
        }

        match &mut self.mapping {
            Mapping::Vtb {
                desc,
                shadow,
                shadow_active,
            } => {
                *shadow = std::mem::replace(desc, new_desc);
                *shadow_active = move_scheme == MoveScheme::DemandMove
                    && self.old_lines.iter().any(|m| !m.is_empty());
                self.shadow_start = now_cycles;
                if move_scheme == MoveScheme::BulkInvalidate {
                    pause = bulk_pause;
                }
            }
            _ => panic!("reconfigure called on an unpartitioned LLC"),
        }
        pause
    }

    /// Advances the background-invalidation walker (§IV-H): after
    /// `delay_cycles` from the reconfiguration, old copies are invalidated
    /// at a rate that finishes the walk in `walk_cycles`; when the walk
    /// completes, the shadow descriptors are dropped.
    pub fn background_tick(&mut self, now_cycles: u64, delay_cycles: u64, walk_cycles: u64) {
        let Mapping::Vtb { shadow_active, .. } = &mut self.mapping else {
            return;
        };
        if !*shadow_active {
            return;
        }
        let elapsed = now_cycles.saturating_sub(self.shadow_start);
        if elapsed <= delay_cycles {
            return;
        }
        let progress = ((elapsed - delay_cycles) as f64 / walk_cycles as f64).min(1.0);
        if progress >= 1.0 {
            let pending: u64 = self.old_lines.iter().map(|m| m.len() as u64).sum();
            self.stats.background_invalidations += pending;
            for m in &mut self.old_lines {
                m.clear();
            }
            *shadow_active = false;
            return;
        }
        // Drop a deterministic subset so that `progress` of the original
        // population is gone: keep lines whose hash exceeds the threshold.
        // Per-entry predicate, so sharding the map by bank drops the same
        // set of lines the single map did.
        let threshold = (progress * u64::MAX as f64) as u64;
        let mut dropped = 0u64;
        for m in &mut self.old_lines {
            let before = m.len();
            m.retain(|&l, _| hash::mix64(l) >= threshold);
            dropped += (before - m.len()) as u64;
        }
        self.stats.background_invalidations += dropped;
    }

    /// Whether the shadow window is currently open.
    #[allow(dead_code)] // exercised by tests and kept for harness inspection
    pub fn shadow_active(&self) -> bool {
        matches!(
            self.mapping,
            Mapping::Vtb {
                shadow_active: true,
                ..
            }
        )
    }

    /// Lines still awaiting demand moves or background invalidation.
    pub fn pending_old_lines(&self) -> usize {
        self.old_lines.iter().map(|m| m.len()).sum()
    }

    /// Aggregate hit/miss statistics across banks.
    #[allow(dead_code)] // exercised by tests and kept for harness inspection
    pub fn bank_stats(&self) -> cdcs_cache::BankStats {
        let mut total = cdcs_cache::BankStats::default();
        for b in &self.banks {
            total.merge(&b.stats());
        }
        total
    }

    /// Total lines resident.
    #[allow(dead_code)] // exercised by tests and kept for harness inspection
    pub fn occupancy(&self) -> usize {
        self.banks.iter().map(|b| b.occupancy()).sum()
    }

    /// Lines resident in one VC's partitions across all banks (0 for
    /// unpartitioned LLCs).
    pub fn vc_occupancy(&self, vc: u32) -> u64 {
        if !matches!(self.mapping, Mapping::Vtb { .. }) {
            return 0;
        }
        let part = PartitionId(vc as u16);
        self.banks
            .iter()
            .map(|b| b.partition_len(part) as u64)
            .sum()
    }

    /// Bank capacity in lines.
    #[allow(dead_code)] // exercised by tests and kept for harness inspection
    pub fn bank_lines(&self) -> u64 {
        self.bank_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vtb_llc_with_placement(alloc: Vec<Vec<u64>>, move_scheme: MoveScheme) -> (Llc, Placement) {
        let num_vcs = alloc.len();
        let banks = alloc[0].len();
        let mut llc = Llc::partitioned(banks, 1024, num_vcs);
        let placement = Placement::from_rows(vec![], alloc);
        llc.reconfigure(&placement, move_scheme, 0, 0);
        (llc, placement)
    }

    #[test]
    fn snuca_spreads_lines_across_banks() {
        let mut llc = Llc::unpartitioned(4, 1024, None);
        let mesh = Mesh::new(2, 2);
        let mut seen = std::collections::HashSet::new();
        for a in 0..200u64 {
            let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
            assert!(!r.hit, "cold accesses miss");
            seen.insert(r.bank);
        }
        assert_eq!(seen.len(), 4);
        // Re-access: all hits.
        for a in 0..200u64 {
            let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
            assert!(r.hit);
        }
    }

    #[test]
    fn rnuca_private_goes_local() {
        let mut llc = Llc::unpartitioned(4, 1024, Some(RNucaPolicy::default()));
        let mesh = Mesh::new(2, 2);
        for a in 0..50u64 {
            let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(3), &mesh, Line(a));
            assert_eq!(r.bank, BankId(3));
        }
        // Shared data spreads.
        let mut seen = std::collections::HashSet::new();
        for a in 100..300u64 {
            let r = llc.access(0, StreamTarget::ProcessShared, TileId(3), &mesh, Line(a));
            seen.insert(r.bank);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn vtb_routes_by_descriptor_and_bypasses_zero_vcs() {
        let (mut llc, _) = vtb_llc_with_placement(
            vec![vec![1024, 0], vec![0, 0]], // vc0 in bank 0 only; vc1 nothing
            MoveScheme::Instant,
        );
        let mesh = Mesh::new(2, 1);
        let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(1));
        assert_eq!(r.bank, BankId(0));
        assert!(!r.bypass);
        let r = llc.access(1, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(2));
        assert!(r.bypass, "zero-allocation VC must bypass the LLC");
    }

    #[test]
    fn partitions_isolate_vcs() {
        let (mut llc, _) =
            vtb_llc_with_placement(vec![vec![512, 0], vec![512, 0]], MoveScheme::Instant);
        let mesh = Mesh::new(2, 1);
        // Same line number in two VCs (different address spaces in practice,
        // but even identical raw lines must not alias across partitions).
        llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(7));
        let r = llc.access(1, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(7));
        assert!(!r.hit, "VCs must not share lines");
    }

    #[test]
    fn instant_moves_relocate_lines() {
        let (mut llc, _) = vtb_llc_with_placement(vec![vec![1024, 0]], MoveScheme::Instant);
        let mesh = Mesh::new(2, 1);
        for a in 0..100u64 {
            llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
        }
        // Move the VC to bank 1.
        let placement = Placement::from_rows(vec![], vec![vec![0, 1024]]);
        llc.reconfigure(&placement, MoveScheme::Instant, 1000, 0);
        assert_eq!(llc.stats.instant_moves, 100);
        // All lines hit immediately at the new bank.
        for a in 0..100u64 {
            let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
            assert!(r.hit, "line {a} lost by instant move");
            assert_eq!(r.bank, BankId(1));
        }
    }

    #[test]
    fn bulk_invalidation_drops_lines_and_pauses() {
        let (mut llc, _) = vtb_llc_with_placement(vec![vec![1024, 0]], MoveScheme::BulkInvalidate);
        let mesh = Mesh::new(2, 1);
        for a in 0..100u64 {
            llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
        }
        let placement = Placement::from_rows(vec![], vec![vec![0, 1024]]);
        let pause = llc.reconfigure(&placement, MoveScheme::BulkInvalidate, 1000, 12345);
        assert_eq!(pause, 12345);
        assert_eq!(llc.stats.bulk_invalidations, 100);
        // Everything misses at the new bank.
        let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(5));
        assert!(!r.hit);
    }

    #[test]
    fn demand_moves_serve_from_old_bank() {
        let (mut llc, _) = vtb_llc_with_placement(vec![vec![1024, 0]], MoveScheme::DemandMove);
        let mesh = Mesh::new(2, 1);
        for a in 0..100u64 {
            llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
        }
        let placement = Placement::from_rows(vec![], vec![vec![0, 1024]]);
        llc.reconfigure(&placement, MoveScheme::DemandMove, 1000, 0);
        assert!(llc.shadow_active());
        assert_eq!(llc.pending_old_lines(), 100);
        // First access after reconfiguration: a demand move, counted as hit.
        let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(5));
        assert!(r.demand_moved && r.hit);
        assert_eq!(r.old_bank_checked, Some(BankId(0)));
        assert_eq!(llc.stats.demand_moves, 1);
        // Second access: a plain hit at the new bank.
        let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(5));
        assert!(r.hit && !r.demand_moved);
    }

    #[test]
    fn background_walk_cleans_up_and_closes_shadow() {
        let (mut llc, _) = vtb_llc_with_placement(vec![vec![1024, 0]], MoveScheme::DemandMove);
        let mesh = Mesh::new(2, 1);
        for a in 0..100u64 {
            llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
        }
        let placement = Placement::from_rows(vec![], vec![vec![0, 1024]]);
        llc.reconfigure(&placement, MoveScheme::DemandMove, 1000, 0);
        // Before the delay: nothing happens.
        llc.background_tick(1000 + 10, 50, 100);
        assert_eq!(llc.pending_old_lines(), 100);
        // Mid-walk: roughly half gone.
        llc.background_tick(1000 + 50 + 50, 50, 100);
        let pending = llc.pending_old_lines();
        assert!(pending < 80 && pending > 20, "pending {pending}");
        // Walk complete: shadow closes.
        llc.background_tick(1000 + 50 + 200, 50, 100);
        assert_eq!(llc.pending_old_lines(), 0);
        assert!(!llc.shadow_active());
        // Accesses now miss (the moved lines were never demanded).
        let r = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(5));
        assert!(!r.hit);
    }

    #[test]
    fn route_is_the_pure_prefix_of_access() {
        // `access` is literally route + stateful lookup; hold the route's
        // fields against the produced results across a shadow window.
        let (mut llc, _) = vtb_llc_with_placement(vec![vec![1024, 0]], MoveScheme::DemandMove);
        let mesh = Mesh::new(2, 1);
        for a in 0..50u64 {
            llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
        }
        let placement = Placement::from_rows(vec![], vec![vec![0, 1024]]);
        llc.reconfigure(&placement, MoveScheme::DemandMove, 1000, 0);
        for a in 0..80u64 {
            let route = llc.route(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
            let result = llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
            assert_eq!(result.bank, route.bank);
            assert!(!route.bypass);
            assert_eq!(route.bank, BankId(1));
            assert_eq!(route.old_bank, Some(BankId(0)));
            if a < 50 {
                assert!(result.demand_moved, "line {a} was displaced");
            }
        }
        // Bypass routes report as such.
        let llc2 = Llc::partitioned(2, 1024, 1);
        let r = llc2.route(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(7));
        assert!(r.bypass);
    }

    #[test]
    fn shard_processing_matches_serial_access() {
        // Two identical LLCs mid shadow window; one runs a mixed two-VC
        // access sequence serially, the other routes it, partitions by
        // home bank (order-preserving), drains each bank's shard, and
        // reassembles results through `lookup_result` — the sharded
        // engine's exact recipe. Results, movement stats and pending
        // shadow lines must all match.
        let mesh = Mesh::new(2, 1);
        let line = |vc: u64, a: u64| Line((vc << 40) | a); // engine tagging
        let build = || {
            let (mut llc, _) =
                vtb_llc_with_placement(vec![vec![512, 0], vec![0, 512]], MoveScheme::DemandMove);
            for a in 0..400u64 {
                llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, line(0, a));
                llc.access(1, StreamTarget::ThreadPrivate, TileId(1), &mesh, line(1, a));
            }
            // Swap the VCs' banks: every resident line is displaced into
            // the shadow window, filed under its new home.
            let placement = Placement::from_rows(vec![], vec![vec![0, 512], vec![512, 0]]);
            llc.reconfigure(&placement, MoveScheme::DemandMove, 1000, 0);
            llc
        };
        let mut serial = build();
        let mut sharded = build();
        let accesses: Vec<(u32, Line)> = (0..600u64)
            .flat_map(|a| [(0u32, line(0, a)), (1u32, line(1, a))])
            .collect();

        let serial_results: Vec<LookupResult> = accesses
            .iter()
            .map(|&(vc, l)| serial.access(vc, StreamTarget::ThreadPrivate, TileId(0), &mesh, l))
            .collect();

        let routes: Vec<Route> = accesses
            .iter()
            .map(|&(vc, l)| sharded.route(vc, StreamTarget::ThreadPrivate, TileId(0), &mesh, l))
            .collect();
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); 2];
        for (i, r) in routes.iter().enumerate() {
            lists[r.bank.index()].push(i);
        }
        let mut outs: Vec<Vec<u8>> = vec![Vec::new(); 2];
        let moved: u64 = {
            let mut shards = sharded.bank_shards();
            for (b, shard) in shards.iter_mut().enumerate() {
                for &i in &lists[b] {
                    let (vc, l) = accesses[i];
                    outs[b].push(shard.access_routed(vc, l, routes[i].old_bank.is_some()));
                }
            }
            shards.iter().map(|s| s.demand_moves).sum()
        };
        sharded.add_demand_moves(moved);

        let mut cursors = [0usize; 2];
        for (i, r) in routes.iter().enumerate() {
            let b = r.bank.index();
            let out = outs[b][cursors[b]];
            cursors[b] += 1;
            assert_eq!(lookup_result(*r, out), serial_results[i], "access {i}");
        }
        assert!(serial.stats.demand_moves > 0, "shadow window went unused");
        assert_eq!(serial.stats, sharded.stats);
        assert_eq!(serial.pending_old_lines(), sharded.pending_old_lines());
        assert_eq!(serial.occupancy(), sharded.occupancy());
    }

    #[test]
    #[should_panic(expected = "unpartitioned")]
    fn reconfigure_unpartitioned_panics() {
        let mut llc = Llc::unpartitioned(2, 1024, None);
        let placement = Placement::from_rows(vec![], vec![vec![0, 0]]);
        llc.reconfigure(&placement, MoveScheme::Instant, 0, 0);
    }

    #[test]
    fn resize_shrink_evicts() {
        let (mut llc, _) = vtb_llc_with_placement(vec![vec![1024, 0]], MoveScheme::Instant);
        let mesh = Mesh::new(2, 1);
        for a in 0..1000u64 {
            llc.access(0, StreamTarget::ThreadPrivate, TileId(0), &mesh, Line(a));
        }
        assert_eq!(llc.occupancy(), 1000);
        // Shrink to 100 lines in the same bank.
        let placement = Placement::from_rows(vec![], vec![vec![100, 0]]);
        llc.reconfigure(&placement, MoveScheme::Instant, 10, 0);
        assert!(llc.occupancy() <= 100);
    }
}

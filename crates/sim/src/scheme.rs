//! Scheme selection: which NUCA organization and movement machinery to run.

use cdcs_core::policy::CdcsPlanner;
use serde::{Deserialize, Serialize};

/// Thread scheduler for schemes that do not place threads themselves
/// (S-NUCA, R-NUCA, Jigsaw — §VI-A evaluates clustered and random).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadSched {
    /// Threads pinned to tiles in id order: same-process/same-benchmark
    /// threads sit together (the §II-B "grouped by type" scheduler).
    Clustered,
    /// Threads pinned to a seeded random permutation of tiles.
    Random,
}

/// The NUCA scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// Static NUCA: lines hashed over all banks, unpartitioned, no
    /// reconfiguration. The paper's baseline.
    SNuca,
    /// R-NUCA: classification-based placement (private → local bank,
    /// shared → chip interleaved), unpartitioned, no reconfiguration.
    RNuca {
        /// Thread pinning (R-NUCA performance is insensitive to it, §VI-A).
        sched: ThreadSched,
    },
    /// Jigsaw: miss-driven allocation + greedy placement each epoch;
    /// threads stay pinned.
    Jigsaw {
        /// Thread pinning: Jigsaw+C (clustered) or Jigsaw+R (random).
        sched: ThreadSched,
    },
    /// CDCS: the full four-step co-scheduling pipeline (or a Fig. 12 factor
    /// variant).
    Cdcs {
        /// Step toggles (+L, +T, +D).
        planner: CdcsPlanner,
        /// Initial pinning before the first reconfiguration.
        sched: ThreadSched,
    },
}

impl Default for Scheme {
    /// S-NUCA, the paper's baseline — and [`crate::SimConfig::default`]'s
    /// choice, so a config deserialized from a pre-`scheme` document (the
    /// golden-coupling `#[serde(default)]` rule) matches the built-in
    /// default config.
    fn default() -> Self {
        Scheme::SNuca
    }
}

impl Scheme {
    /// Full CDCS with random initial placement.
    pub fn cdcs() -> Self {
        Scheme::Cdcs {
            planner: CdcsPlanner::default(),
            sched: ThreadSched::Random,
        }
    }

    /// Jigsaw with the random scheduler (Jigsaw+R).
    pub fn jigsaw_random() -> Self {
        Scheme::Jigsaw {
            sched: ThreadSched::Random,
        }
    }

    /// Jigsaw with the clustered scheduler (Jigsaw+C).
    pub fn jigsaw_clustered() -> Self {
        Scheme::Jigsaw {
            sched: ThreadSched::Clustered,
        }
    }

    /// R-NUCA with random pinning.
    pub fn rnuca() -> Self {
        Scheme::RNuca {
            sched: ThreadSched::Random,
        }
    }

    /// Whether the scheme reconfigures at epoch boundaries.
    pub fn reconfigures(&self) -> bool {
        matches!(self, Scheme::Jigsaw { .. } | Scheme::Cdcs { .. })
    }

    /// Whether LLC banks are partitioned per VC.
    pub fn partitioned(&self) -> bool {
        self.reconfigures()
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Scheme::SNuca => "S-NUCA".into(),
            Scheme::RNuca { .. } => "R-NUCA".into(),
            Scheme::Jigsaw {
                sched: ThreadSched::Clustered,
            } => "Jigsaw+C".into(),
            Scheme::Jigsaw {
                sched: ThreadSched::Random,
            } => "Jigsaw+R".into(),
            Scheme::Cdcs { planner, .. } => {
                if planner.latency_aware && planner.place_threads && planner.refine_trades {
                    "CDCS".into()
                } else if !(planner.latency_aware || planner.place_threads || planner.refine_trades)
                {
                    // All three steps disabled still runs the partitioned
                    // CDCS pipeline (miss-driven allocation, greedy
                    // placement), which is *not* the plain Jigsaw+R scheme —
                    // give it a distinct label so a Fig. 12-style factor
                    // table cannot silently alias two different cells.
                    "Jigsaw+R+∅".into()
                } else {
                    format!(
                        "Jigsaw+R{}{}{}",
                        if planner.latency_aware { "+L" } else { "" },
                        if planner.place_threads { "+T" } else { "" },
                        if planner.refine_trades { "+D" } else { "" },
                    )
                }
            }
        }
    }
}

/// Line-movement machinery at reconfigurations (§IV-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MoveScheme {
    /// Idealized: relocated lines teleport to their new banks instantly.
    Instant,
    /// Jigsaw-style bulk invalidations: all moved lines are dropped and
    /// every core pauses while banks walk their arrays.
    BulkInvalidate,
    /// CDCS: demand moves through the shadow descriptors, plus background
    /// invalidations off the critical path — no pauses.
    DemandMove,
}

impl Default for MoveScheme {
    /// Demand moves — the paper's mechanism and
    /// [`crate::SimConfig::default`]'s choice.
    fn default() -> Self {
        MoveScheme::DemandMove
    }
}

impl MoveScheme {
    /// Display name used by the Fig. 17/18 harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            MoveScheme::Instant => "Instant moves",
            MoveScheme::BulkInvalidate => "Bulk invs",
            MoveScheme::DemandMove => "Background invs",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Scheme::SNuca.name(), "S-NUCA");
        assert_eq!(Scheme::jigsaw_clustered().name(), "Jigsaw+C");
        assert_eq!(Scheme::jigsaw_random().name(), "Jigsaw+R");
        assert_eq!(Scheme::cdcs().name(), "CDCS");
        assert_eq!(Scheme::rnuca().name(), "R-NUCA");
    }

    #[test]
    fn factor_variant_names() {
        let s = Scheme::Cdcs {
            planner: CdcsPlanner::with_features(true, false, false),
            sched: ThreadSched::Random,
        };
        assert_eq!(s.name(), "Jigsaw+R+L");
        let s = Scheme::Cdcs {
            planner: CdcsPlanner::with_features(false, true, true),
            sched: ThreadSched::Random,
        };
        assert_eq!(s.name(), "Jigsaw+R+T+D");
    }

    #[test]
    fn featureless_cdcs_does_not_alias_jigsaw_r() {
        // CDCS with every planner step off still runs the partitioned CDCS
        // pipeline; its label must not collide with the real Jigsaw+R.
        let s = Scheme::Cdcs {
            planner: CdcsPlanner::with_features(false, false, false),
            sched: ThreadSched::Random,
        };
        assert_eq!(s.name(), "Jigsaw+R+∅");
        assert_ne!(s.name(), Scheme::jigsaw_random().name());
    }

    #[test]
    fn reconfiguration_flags() {
        assert!(!Scheme::SNuca.reconfigures());
        assert!(!Scheme::rnuca().reconfigures());
        assert!(Scheme::jigsaw_random().reconfigures());
        assert!(Scheme::cdcs().reconfigures());
        assert!(Scheme::cdcs().partitioned());
        assert!(!Scheme::SNuca.partitioned());
    }

    #[test]
    fn move_scheme_names() {
        assert_eq!(MoveScheme::Instant.name(), "Instant moves");
        assert_eq!(MoveScheme::BulkInvalidate.name(), "Bulk invs");
        assert_eq!(MoveScheme::DemandMove.name(), "Background invs");
    }
}

//! Memory-controller bandwidth and latency model.
//!
//! The paper's system has 8 single-channel controllers at 12.8 GB/s each
//! with 120-cycle zero-load latency (Table 2), and pages interleaved across
//! controllers. We model contention with an interval-level open queueing
//! approximation: within an interval, the average memory latency is the
//! zero-load latency plus an M/M/1-style queueing term in the measured
//! channel utilization. This is what lets the simulator reproduce the
//! second-order effect the paper calls out in Table 1 ("because omnet does
//! not consume memory bandwidth anymore, milc instances have more of it and
//! speed up moderately").

use serde::{Deserialize, Serialize};

/// Interval-level memory latency model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryModel {
    zero_load: f64,
    /// Aggregate bandwidth in lines per cycle.
    bandwidth: f64,
    /// Utilization cap: queueing delay is evaluated at min(ρ, cap) to keep
    /// the feedback loop stable when demand transiently exceeds bandwidth.
    rho_cap: f64,
    /// Current latency estimate (from last interval's utilization).
    latency: f64,
    /// Accesses observed in the current interval.
    interval_accesses: u64,
}

impl MemoryModel {
    /// Creates a model with the given zero-load latency (cycles) and
    /// aggregate bandwidth (lines/cycle).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive.
    pub fn new(zero_load: f64, bandwidth: f64) -> Self {
        assert!(
            zero_load > 0.0 && bandwidth > 0.0,
            "invalid memory parameters"
        );
        MemoryModel {
            zero_load,
            bandwidth,
            rho_cap: 0.95,
            latency: zero_load,
            interval_accesses: 0,
        }
    }

    /// Records one memory access (an LLC miss) in the current interval and
    /// returns the current latency estimate in cycles (excluding NoC).
    #[inline]
    pub fn access(&mut self) -> f64 {
        self.interval_accesses += 1;
        self.latency
    }

    /// Current latency estimate without recording an access.
    pub fn current_latency(&self) -> f64 {
        self.latency
    }

    /// Records `k` accesses at once — identical to calling
    /// [`Self::access`] `k` times and discarding the returned estimates
    /// (the estimate only changes at interval boundaries).
    #[inline]
    pub fn count_accesses(&mut self, k: u64) {
        self.interval_accesses += k;
    }

    /// Ends an interval of `cycles` cycles: computes utilization and updates
    /// the latency estimate for the next interval.
    ///
    /// Returns the interval's utilization ρ (before capping).
    pub fn end_interval(&mut self, cycles: u64) -> f64 {
        let rho = self.interval_accesses as f64 / (cycles as f64 * self.bandwidth);
        let capped = rho.min(self.rho_cap);
        // M/M/1-flavoured queueing: latency = L0 * (1 + ρ/(1-ρ)), smoothed
        // 50/50 with the previous estimate to damp oscillation.
        let target = self.zero_load * (1.0 + capped / (1.0 - capped));
        self.latency = 0.5 * self.latency + 0.5 * target;
        self.interval_accesses = 0;
        rho
    }

    /// Aggregate bandwidth in lines per cycle.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_memory_stays_at_zero_load() {
        let mut m = MemoryModel::new(120.0, 0.8);
        for _ in 0..10 {
            m.end_interval(1000);
        }
        assert!((m.current_latency() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn latency_rises_with_utilization() {
        let mut low = MemoryModel::new(120.0, 0.8);
        let mut high = MemoryModel::new(120.0, 0.8);
        for _ in 0..20 {
            for _ in 0..100 {
                low.access();
            }
            for _ in 0..700 {
                high.access();
            }
            low.end_interval(1000);
            high.end_interval(1000);
        }
        assert!(high.current_latency() > low.current_latency() * 2.0);
    }

    #[test]
    fn saturation_is_capped() {
        let mut m = MemoryModel::new(120.0, 0.8);
        for _ in 0..50 {
            for _ in 0..5000 {
                m.access();
            }
            let rho = m.end_interval(1000);
            assert!(rho > 1.0, "demand exceeds bandwidth");
        }
        // Capped at rho_cap = 0.95: latency <= 120 * (1 + 0.95/0.05) = 2400.
        assert!(m.current_latency() <= 2400.0 + 1e-9);
        assert!(m.current_latency() > 1000.0);
    }

    #[test]
    fn freeing_bandwidth_reduces_latency() {
        // The Table 1 milc effect: when a co-runner stops missing, latency
        // falls back toward zero-load.
        let mut m = MemoryModel::new(120.0, 0.8);
        for _ in 0..10 {
            for _ in 0..600 {
                m.access();
            }
            m.end_interval(1000);
        }
        let loaded = m.current_latency();
        for _ in 0..20 {
            for _ in 0..100 {
                m.access();
            }
            m.end_interval(1000);
        }
        assert!(m.current_latency() < loaded / 1.5);
    }

    #[test]
    #[should_panic(expected = "invalid memory parameters")]
    fn zero_bandwidth_panics() {
        MemoryModel::new(120.0, 0.0);
    }
}

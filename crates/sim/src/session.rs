//! Streaming grid sessions: the execution layer under every grid wave.
//!
//! [`crate::runner::run_grid`] used to be one blocking fan-out: callers got
//! nothing until every cell finished, could not cancel, and could not
//! observe progress. A [`GridSession`] replaces those internals with a
//! long-lived object: cells are claimed one at a time from a shared queue
//! by a bounded worker pool, and completed `(cell index, result)` pairs
//! stream back over [`GridSession::recv`] *as they finish*. A
//! [`CancelToken`] stops the session from issuing new cells (in-flight
//! cells complete and are still delivered), and [`GridSession::progress`]
//! exposes live counters.
//!
//! Determinism is unchanged: every cell derives its RNG state from
//! `(config, cell)` alone — never from worker identity, claim order, or
//! delivery order — so the collected results are bit-identical to serial
//! execution (the engine-equivalence and golden-port suites pin this
//! through the session-backed `run_grid`).
//!
//! Two driving modes share one claim/run/deliver path:
//!
//! * [`GridSession::spawn`] starts its own bounded pool of worker threads
//!   (what `run_grid` uses);
//! * [`GridSession::queued`] spawns nothing — external threads drive the
//!   session via [`GridSession::try_claim`] + [`GridSession::run_claimed`]
//!   (or [`GridSession::drive`]). This is the hook the `cdcs-serve`
//!   experiment daemon uses to interleave cells from many concurrent jobs
//!   fairly across one shared machine-wide pool.

use crate::runner::{run_cell, GridCell};
use crate::{SimConfig, SimResult};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// A hook run on the worker thread just before each claimed cell, inside
/// the same panic boundary as the cell body: a panicking hook fails *that
/// cell* (its `Err` carries the payload message), never the worker. This
/// is the seam the `cdcs-serve` fault-injection harness uses to inject
/// deterministic cell panics and slowdowns without touching the engine.
pub type CellHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Optional session behaviors beyond the plain claim/run/deliver loop.
#[derive(Default, Clone)]
pub struct SessionOptions {
    /// Wall-clock deadline: once it passes, no new cells are issued (the
    /// session behaves as cancelled) and
    /// [`GridSession::deadline_exceeded`] reports `true`. In-flight cells
    /// still complete and deliver.
    pub deadline: Option<Instant>,
    /// Pre-cell hook (see [`CellHook`]).
    pub cell_hook: Option<CellHook>,
}

impl std::fmt::Debug for SessionOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionOptions")
            .field("deadline", &self.deadline)
            .field("cell_hook", &self.cell_hook.is_some())
            .finish()
    }
}

/// Applies the PR 3 nested-clamp rule for a session executed by
/// `pool_workers` concurrent workers: when the config asks for bank-sharded
/// intra-cell parallelism too, the inner worker count is clamped so
/// `pool × inner` never exceeds the machine. Cell-level parallelism (the
/// better-scaling axis) keeps priority; a 1-worker pool keeps its full
/// intra-cell fan-out. The clamp cannot change any result — sharded results
/// are bit-identical for every worker count.
pub fn clamp_intra_cell(config: &SimConfig, pool_workers: usize) -> SimConfig {
    let machine = rayon::current_num_threads();
    let mut cfg = config.clone();
    if cfg.intra_cell_threads > 1 {
        // Flooring at 1 (not 0 = the batched engine) is deliberate: the
        // 1-worker shard pipeline drains in-thread with no spawns and its
        // bank-grouped processing measures faster than the batched engine's
        // interleaved drain (see `runner::run_grid`).
        cfg.intra_cell_threads = cfg
            .intra_cell_threads
            .min((machine / pool_workers.max(1)).max(1));
    }
    cfg
}

/// One completed cell, streamed in completion order.
#[derive(Debug)]
pub struct CellDone {
    /// Index of the cell in the submitted list.
    pub index: usize,
    /// The cell's result (construction errors surface per cell).
    pub result: Result<SimResult, String>,
}

/// Live session counters (a consistent snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionProgress {
    /// Cells submitted to the session.
    pub total: usize,
    /// Cells claimed by workers so far (running or finished).
    pub issued: usize,
    /// Cells finished (delivered or waiting in the stream queue).
    pub completed: usize,
    /// Whether the session has been cancelled.
    pub cancelled: bool,
}

impl SessionProgress {
    /// True once no further results will ever be produced: every claimed
    /// cell has completed and no new cells can be issued.
    pub fn finished(&self) -> bool {
        self.completed == self.issued && (self.cancelled || self.issued == self.total)
    }
}

/// Cancels a [`GridSession`]: no new cells are issued after
/// [`CancelToken::cancel`]; in-flight cells complete and are delivered.
/// Cheap to clone and safe to trigger from any thread (the `cdcs-serve`
/// daemon cancels jobs from HTTP handler threads).
#[derive(Debug, Clone)]
pub struct CancelToken {
    shared: Arc<SessionShared>,
}

impl CancelToken {
    /// Stops the session from issuing new cells.
    pub fn cancel(&self) {
        self.shared.cancelled.store(true, Ordering::SeqCst);
        // Wake any blocked `recv`: with nothing in flight the session is
        // now finished and the stream must return `None`.
        let _guard = self.shared.lock();
        self.shared.cv.notify_all();
    }

    /// Whether the session has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.shared.cancelled.load(Ordering::SeqCst)
    }
}

/// Mutable session state, guarded by one mutex (claims are per *cell*, so
/// the lock is touched a handful of times per simulation — never per
/// access).
#[derive(Debug, Default)]
struct SessionState {
    /// Next unissued cell index.
    next: usize,
    /// Cells claimed so far.
    issued: usize,
    /// Cells finished so far.
    completed: usize,
    /// Finished cells not yet taken by `recv`.
    stream: VecDeque<CellDone>,
    /// Cells returned by [`GridSession::requeue`] (a revoked fleet
    /// lease); claimed again before any fresh index is issued.
    requeued: VecDeque<usize>,
}

struct SessionShared {
    /// Pool-clamped configuration every cell runs under.
    config: SimConfig,
    /// The submitted cells (immutable once the session exists).
    cells: Vec<GridCell>,
    /// Cancellation flag (outside the lock so checks are free).
    cancelled: AtomicBool,
    /// Set the first time a claim observes the deadline has passed.
    deadline_hit: AtomicBool,
    options: SessionOptions,
    state: Mutex<SessionState>,
    cv: Condvar,
}

impl std::fmt::Debug for SessionShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionShared")
            .field("cells", &self.cells.len())
            .field("cancelled", &self.cancelled.load(Ordering::SeqCst))
            .field("deadline_hit", &self.deadline_hit.load(Ordering::SeqCst))
            .field("options", &self.options)
            .finish_non_exhaustive()
    }
}

impl SessionShared {
    // A poisoned session mutex means some holder panicked mid-update; the
    // state it guards (counters + stream queue) is only ever mutated in
    // panic-free straight-line code, so recovering the guard is safe —
    // and a cancel/status path that panicked on poison would turn one bad
    // cell into a wedged daemon.
    fn lock(&self) -> MutexGuard<'_, SessionState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims the next cell, or `None` when the session is cancelled,
    /// past its deadline, or drained. Each index is handed out exactly
    /// once.
    fn try_claim(&self) -> Option<usize> {
        if self.cancelled.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(deadline) = self.options.deadline {
            // lint: allow(determinism) — deadline enforcement reads the wall
            // clock to *stop* issuing cells; completed cells' SimResults are
            // untouched, so no golden byte depends on this read.
            if Instant::now() >= deadline {
                self.deadline_hit.store(true, Ordering::SeqCst);
                self.cancelled.store(true, Ordering::SeqCst);
                let _guard = self.lock();
                self.cv.notify_all();
                return None;
            }
        }
        let mut state = self.lock();
        if self.cancelled.load(Ordering::SeqCst) {
            return None;
        }
        // Revoked-lease cells outrank fresh indices: re-running them first
        // keeps the issued window tight so `finished()` flips as soon as
        // the stragglers land.
        if let Some(i) = state.requeued.pop_front() {
            state.issued += 1;
            return Some(i);
        }
        if state.next >= self.cells.len() {
            return None;
        }
        let i = state.next;
        state.next += 1;
        state.issued += 1;
        Some(i)
    }

    /// Returns a claimed-but-unfinished cell to the queue (a fleet lease
    /// was revoked before its result arrived). The index becomes claimable
    /// again and `issued` is rolled back so progress accounting stays
    /// exact. Callers must only requeue indices they claimed and have not
    /// delivered — double-delivery would corrupt the counters.
    fn requeue(&self, index: usize) {
        let mut state = self.lock();
        state.issued = state.issued.saturating_sub(1);
        state.requeued.push_back(index);
        self.cv.notify_all();
    }

    /// Delivers an externally-computed result for a claimed cell (a fleet
    /// runner executed it remotely). Counter-wise this is the tail of
    /// [`Self::run_claimed`] without the local execution.
    fn deliver(&self, index: usize, result: Result<SimResult, String>) {
        let mut state = self.lock();
        state.completed += 1;
        state.stream.push_back(CellDone { index, result });
        self.cv.notify_all();
    }

    /// Runs a claimed cell on the calling thread and delivers its result to
    /// the stream.
    ///
    /// A panicking cell is caught and delivered as that cell's `Err`
    /// instead of killing the worker: an uncaught unwind after `issued`
    /// was bumped would leave `completed` behind forever and deadlock
    /// every `recv`/`join` (and silently shrink the daemon's shared
    /// pool). The session keeps streaming; the failure surfaces exactly
    /// like a construction error.
    fn run_claimed(&self, index: usize) {
        let result = catch_cell_panic(index, || {
            if let Some(hook) = &self.options.cell_hook {
                hook(index);
            }
            run_cell(&self.config, &self.cells[index])
        });
        self.deliver(index, result);
    }

    fn progress_locked(&self, state: &SessionState) -> SessionProgress {
        SessionProgress {
            total: self.cells.len(),
            issued: state.issued,
            completed: state.completed,
            cancelled: self.cancelled.load(Ordering::SeqCst),
        }
    }
}

/// Runs one cell body, converting an unwind into that cell's `Err`. The
/// payload message is preserved (`&str` and `String` panics; anything
/// else is labelled as such).
fn catch_cell_panic(
    index: usize,
    run: impl FnOnce() -> Result<SimResult, String>,
) -> Result<SimResult, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).unwrap_or_else(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(format!("cell {index} panicked: {msg}"))
    })
}

/// A streaming execution session over one grid of cells.
///
/// See the module docs for the two driving modes. Dropping a session
/// cancels it and joins its worker threads (in-flight cells finish first).
#[derive(Debug)]
pub struct GridSession {
    shared: Arc<SessionShared>,
    workers: Vec<JoinHandle<()>>,
}

impl GridSession {
    /// Creates a session and starts a bounded pool of `workers` threads
    /// executing its cells. `config` is pool-clamped via
    /// [`clamp_intra_cell`]; at most one thread per cell is started.
    pub fn spawn(config: &SimConfig, cells: Vec<GridCell>, workers: usize) -> Self {
        let mut session = GridSession::queued(&clamp_intra_cell(config, workers), cells);
        let count = workers.min(session.shared.cells.len());
        session.workers = (0..count)
            .map(|_| {
                let shared = Arc::clone(&session.shared);
                std::thread::spawn(move || {
                    while let Some(i) = shared.try_claim() {
                        shared.run_claimed(i);
                    }
                })
            })
            .collect();
        session
    }

    /// Creates a session with **no** worker threads: external threads drive
    /// it through [`Self::try_claim`] + [`Self::run_claimed`] or
    /// [`Self::drive`]. `config` is used verbatim — callers driving the
    /// session from a wide shared pool apply [`clamp_intra_cell`]
    /// themselves (the `cdcs-serve` scheduler does).
    pub fn queued(config: &SimConfig, cells: Vec<GridCell>) -> Self {
        GridSession::queued_with(config, cells, SessionOptions::default())
    }

    /// [`Self::queued`] with extra behaviors: a wall-clock deadline and/or
    /// a pre-cell hook (the `cdcs-serve` daemon's deadline enforcement and
    /// fault-injection seams).
    pub fn queued_with(config: &SimConfig, cells: Vec<GridCell>, options: SessionOptions) -> Self {
        GridSession {
            shared: Arc::new(SessionShared {
                config: config.clone(),
                cells,
                cancelled: AtomicBool::new(false),
                deadline_hit: AtomicBool::new(false),
                options,
                state: Mutex::new(SessionState::default()),
                cv: Condvar::new(),
            }),
            workers: Vec::new(),
        }
    }

    /// Whether a claim has observed the session's deadline passing (the
    /// session then behaves as cancelled; callers use this to distinguish
    /// `deadline_exceeded` from a user cancel).
    pub fn deadline_exceeded(&self) -> bool {
        self.shared.deadline_hit.load(Ordering::SeqCst)
    }

    /// The cells this session runs.
    pub fn cells(&self) -> &[GridCell] {
        &self.shared.cells
    }

    /// Claims the next cell for the calling thread, or `None` when the
    /// session is cancelled or all cells are issued. Pair every claim with
    /// [`Self::run_claimed`].
    pub fn try_claim(&self) -> Option<usize> {
        self.shared.try_claim()
    }

    /// Runs a claimed cell on the calling thread and delivers its result.
    pub fn run_claimed(&self, index: usize) {
        self.shared.run_claimed(index);
    }

    /// Returns a claimed cell to the queue without a result — the fleet
    /// revocation path: a remote lease missed its heartbeat window, so the
    /// cell must be claimable again (requeued indices are re-issued before
    /// any fresh index). Only call with an index obtained from
    /// [`Self::try_claim`] that has not been delivered.
    pub fn requeue(&self, index: usize) {
        self.shared.requeue(index);
    }

    /// Delivers an externally-computed result for a claimed cell — the
    /// fleet result path: a remote runner executed `(config, cell)` and
    /// shipped the `SimResult` back. Determinism makes this
    /// indistinguishable from running the cell locally. Only call once per
    /// claimed index.
    pub fn deliver(&self, index: usize, result: Result<SimResult, String>) {
        self.shared.deliver(index, result);
    }

    /// The (pool-clamped) configuration every cell runs under — what a
    /// fleet lease ships to a remote runner alongside the cell.
    pub fn config(&self) -> &SimConfig {
        &self.shared.config
    }

    /// Drives the session on the calling thread until no cells remain
    /// (cells run in index order when this is the only driver — the serial
    /// reference path).
    pub fn drive(&self) {
        while let Some(i) = self.try_claim() {
            self.run_claimed(i);
        }
    }

    /// A cancellation handle for this session.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A consistent snapshot of the live counters.
    pub fn progress(&self) -> SessionProgress {
        let state = self.shared.lock();
        self.shared.progress_locked(&state)
    }

    /// Blocks until the next cell finishes and returns it, in completion
    /// order; `None` once every result has been delivered and no more will
    /// come (all cells done, or cancelled with in-flight cells drained).
    ///
    /// Externally-driven sessions ([`Self::queued`]) only make progress
    /// while some thread drives them — a lone `recv` with no driver blocks.
    pub fn recv(&self) -> Option<CellDone> {
        let mut state = self.shared.lock();
        loop {
            if let Some(done) = state.stream.pop_front() {
                return Some(done);
            }
            if self.shared.progress_locked(&state).finished() {
                return None;
            }
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Drains the stream to completion and joins the worker pool. Returns
    /// one slot per cell in *index* order; `None` slots are cells the
    /// session never issued (only possible after cancellation).
    pub fn join(mut self) -> Vec<Option<Result<SimResult, String>>> {
        let mut slots: Vec<Option<Result<SimResult, String>>> =
            (0..self.shared.cells.len()).map(|_| None).collect();
        while let Some(done) = self.recv() {
            slots[done.index] = Some(done.result);
        }
        // Workers convert every cell unwind into that cell's `Err`, so a
        // join failure would mean a panic outside the catch boundary —
        // the results are already drained, so report nothing rather than
        // propagate.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        slots
    }
}

impl Drop for GridSession {
    fn drop(&mut self) {
        // Stop issuing new cells and wait for in-flight ones, so dropping a
        // half-consumed session never leaks running simulations. Never
        // panic in Drop (a double panic aborts the process).
        self.shared.cancelled.store(true, Ordering::SeqCst);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::catch_cell_panic;

    // A panicking cell must become that cell's `Err`, never an unwound
    // worker: an unwind after `issued` was bumped but before `completed`
    // would deadlock every `recv`/`join` and silently shrink the daemon's
    // pool. (Valid configs cannot currently panic mid-run — `validate`
    // rejects the known traps — so the conversion is pinned here at the
    // mechanism level.)
    #[test]
    fn panics_become_cell_errors_with_their_message() {
        let err = catch_cell_panic(7, || panic!("boom {}", 41 + 1)).expect_err("panic is Err");
        assert_eq!(err, "cell 7 panicked: boom 42");
        let err = catch_cell_panic(3, || panic!("static")).expect_err("panic is Err");
        assert_eq!(err, "cell 3 panicked: static");
    }

    #[test]
    fn non_panicking_results_pass_through_unchanged() {
        let err = catch_cell_panic(0, || Err("plain error".into())).expect_err("Err passes");
        assert_eq!(err, "plain error");
    }
}

//! Simulator configuration (the paper's Table 2, with time scaling).

use crate::scheme::{MoveScheme, Scheme};
use cdcs_mesh::{Mesh, NocConfig, Topology};
use cdcs_workload::EventScript;
use serde::{Deserialize, Serialize};

/// Which miss-curve monitor the partitioned schemes use (§VI-C compares
/// GMONs against UMONs of various resolutions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MonitorKind {
    /// Geometric monitors (the paper's design, §IV-G).
    Gmon {
        /// Tag-array ways (64 in the paper).
        ways: usize,
    },
    /// Conventional utility monitors with uniform capacity per way.
    Umon {
        /// Tag-array ways; 64 is the paper's "too coarse" point, 256+
        /// matches GMON performance, 512 covers 64 KB granularity.
        ways: usize,
    },
}

impl Default for MonitorKind {
    /// The paper's 64-way GMON (§IV-G) — the same monitor
    /// [`SimConfig::default`] picks, so a config deserialized from a
    /// document missing `monitor_kind` (the golden-coupling
    /// `#[serde(default)]` rule) matches the built-in default.
    fn default() -> Self {
        MonitorKind::Gmon { ways: 64 }
    }
}

/// Which outer run loop drives the simulation.
///
/// Results from the two loops coincide exactly when the workload is
/// static: the event engine with an empty [`EventScript`] is bit-identical
/// to the batched loop (pinned by the `event_engine_golden` tests). The
/// batched loop stays the steady-state fast path; the event loop adds the
/// dynamic machinery — mid-run arrivals, departures, bursts, and idle
/// gaps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// The steady-state loop: fixed thread roster, no workload events.
    #[default]
    Batched,
    /// The event-driven loop: consumes [`SimConfig::events`] at interval
    /// granularity; threads join and leave mid-run through the ordinary
    /// reconfiguration path.
    Event,
}

/// Full simulator configuration.
///
/// Defaults model the paper's 64-core CMP (Table 2): 8×8 mesh, 512 KB
/// 16-way banks (one per tile), 8 edge memory controllers at 12.8 GB/s and
/// 120-cycle zero-load latency, 3/1-cycle NoC. Times are scaled: the paper
/// reconfigures every 50 Mcycles over ≥1 Gcycle runs; our synthetic
/// workloads are stationary, so shorter epochs measure the same steady
/// state (see `DESIGN.md` §1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Chip fabric (8×8 for the paper's target, 6×6 for the case study).
    #[serde(default)]
    pub mesh: Mesh,
    /// LLC bank capacity in lines (512 KB = 8192 lines).
    #[serde(default)]
    pub bank_lines: u64,
    /// NoC timing.
    #[serde(default)]
    pub noc: NocConfig,
    /// LLC bank access latency, cycles (Table 2: 9).
    #[serde(default)]
    pub bank_latency: u32,
    /// L2 hit latency, cycles (Table 2: 6) — folded into the base IPC of the
    /// core model; kept for documentation/energy accounting.
    #[serde(default)]
    pub l2_latency: u32,
    /// Number of memory controllers (Table 2: 8).
    #[serde(default)]
    pub mem_controllers: usize,
    /// Zero-load memory latency, cycles (Table 2: 120), excluding NoC.
    #[serde(default)]
    pub mem_zero_load: f64,
    /// Peak bandwidth per controller, in cache lines per cycle (12.8 GB/s at
    /// 2 GHz and 64 B lines = 0.1 lines/cycle).
    #[serde(default)]
    pub mem_lines_per_cycle_per_ctrl: f64,
    /// The NUCA scheme under test.
    #[serde(default)]
    pub scheme: Scheme,
    /// Line-movement machinery used at reconfigurations (§IV-H).
    #[serde(default)]
    pub move_scheme: MoveScheme,
    /// Reconfiguration period, cycles (scaled stand-in for the paper's
    /// 25 ms / 50 Mcycles).
    #[serde(default)]
    pub epoch_cycles: u64,
    /// Interval length for the IPC feedback loop, cycles.
    #[serde(default)]
    pub interval_cycles: u64,
    /// Warm-up epochs excluded from measurement.
    #[serde(default)]
    pub warmup_epochs: usize,
    /// Measured epochs.
    #[serde(default)]
    pub measure_epochs: usize,
    /// Capacity-allocation granularity in lines (64 KB = 1024; the
    /// bank-granularity ablation of §VI-C uses larger values).
    #[serde(default)]
    pub alloc_granularity: u64,
    /// Cores paused for this many cycles on a bulk-invalidation
    /// reconfiguration (the paper measures 114 Kcycles on average).
    #[serde(default)]
    pub bulk_pause_cycles: u64,
    /// Cycles after a reconfiguration before background invalidations start
    /// (§IV-H: 50 Kcycles).
    #[serde(default)]
    pub background_delay_cycles: u64,
    /// Cycles for the background walk to complete once started (§IV-H:
    /// ~100 Kcycles).
    #[serde(default)]
    pub background_walk_cycles: u64,
    /// GMON address-sampling period. The paper samples every 64th access
    /// over 50 Mcycle epochs; our epochs are ~50x shorter, so the default
    /// period is denser to give the monitors equivalent sample counts.
    #[serde(default)]
    pub monitor_sample_period: u32,
    /// GMON tag-array sets. The paper's 1024-tag GMON has 16 sets; the
    /// scaled-down epochs need a larger array (64 sets = 4096 tags) for the
    /// same curve fidelity per epoch.
    #[serde(default)]
    pub monitor_sets: usize,
    /// Cost-benefit gate for applying a new placement: the predicted
    /// total-latency gain (Eq. 1 + Eq. 2, per epoch) must exceed
    /// `reconfig_benefit_factor x relocated_lines x mem_latency` (the
    /// one-shot refill cost of the lines the reconfiguration displaces).
    /// The gain recurs every epoch while the refill cost is paid once, so
    /// the factor folds an amortization horizon in: 0.05 means a ~25% refill
    /// cost amortized over ~5 epochs. At the paper's 50 Mcycle epochs
    /// movement costs are negligible and every placement applies; at our
    /// compressed epochs they are ~50x larger relative, so noise-driven
    /// rearrangements must pay for themselves (see `DESIGN.md` §6).
    /// 0.0 applies every placement like the paper.
    #[serde(default)]
    pub reconfig_benefit_factor: f64,
    /// Monitor type for partitioned schemes.
    #[serde(default)]
    pub monitor_kind: MonitorKind,
    /// Base RNG seed for the run.
    #[serde(default)]
    pub seed: u64,
    /// Run the one-access-at-a-time reference engine instead of the batched,
    /// table-driven pipeline. Results are bit-identical either way (the
    /// engine-equivalence golden test holds the two paths against each
    /// other); the reference path exists for that test and as the
    /// definitional spec of the access path. Takes precedence over
    /// `intra_cell_threads`.
    #[serde(default)]
    pub reference_engine: bool,
    /// Worker threads for the bank-sharded intra-cell pipeline; `0`
    /// (default) runs the single-core batched engine. Results are
    /// bit-identical for every value — the sharding partitions work by home
    /// LLC bank and reduces in a fixed index order — so this knob trades
    /// wall clock only. `1` exercises the full sharded machinery on one
    /// worker (useful in tests); values above the physical core count just
    /// oversubscribe. Nested inside [`crate::runner::run_grid`], the outer
    /// pool clamps it so `outer × inner` stays within the machine.
    #[serde(default)]
    pub intra_cell_threads: usize,
    /// Region side (in tiles) for hierarchical CDCS planning; `0` (default)
    /// keeps the flat chip-wide planner. When non-zero, CDCS epochs plan
    /// through the region-decomposed planner — required for mega-meshes
    /// (256+ tiles), where the flat planner's quadratic cost and scratch
    /// become prohibitive. Only `Scheme::Cdcs` routes through the
    /// hierarchy; the Jigsaw variants always plan flat.
    #[serde(default)]
    pub hier_region_side: u16,
    /// Relative per-VC demand-signature delta below which an epoch may
    /// *warm-start*: VCs whose miss curves and access rates changed by at
    /// most this fraction keep their previous placement verbatim, and only
    /// the changed VCs are re-sized and re-placed. `0.0` (default) replans
    /// every epoch from scratch. Only meaningful with
    /// `hier_region_side > 0`.
    #[serde(default)]
    pub hier_change_threshold: f64,
    /// Which outer run loop drives the simulation. [`EngineMode::Batched`]
    /// (default) is the steady-state path; [`EngineMode::Event`] consumes
    /// [`Self::events`] and supports mid-run thread membership changes.
    #[serde(default)]
    pub engine: EngineMode,
    /// Dynamic workload script for the event engine. An empty script (the
    /// default) leaves the run steady-state — and bit-identical to the
    /// batched engine. Non-empty scripts require `engine = Event`.
    #[serde(default)]
    pub events: EventScript,
    /// Directory to record per-thread access traces into (record mode
    /// writes a `cdcs_workload::trace` index + binary logs at the end of
    /// the run). Empty (default) disables recording.
    #[serde(default)]
    pub trace_record: String,
    /// Path to a recorded trace index (`index.json`) to replay instead of
    /// the synthetic generators; the trace's mix overrides the cell's.
    /// Empty (default) disables replay.
    #[serde(default)]
    pub trace_replay: String,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mesh: Mesh::new(8, 8),
            bank_lines: 8192,
            noc: NocConfig::default(),
            bank_latency: 9,
            l2_latency: 6,
            mem_controllers: 8,
            mem_zero_load: 120.0,
            mem_lines_per_cycle_per_ctrl: 0.1,
            scheme: Scheme::SNuca,
            move_scheme: MoveScheme::DemandMove,
            epoch_cycles: 1_000_000,
            interval_cycles: 50_000,
            warmup_epochs: 4,
            measure_epochs: 4,
            alloc_granularity: 1024,
            bulk_pause_cycles: 100_000,
            background_delay_cycles: 50_000,
            background_walk_cycles: 100_000,
            monitor_sample_period: 4,
            monitor_sets: 256,
            reconfig_benefit_factor: 0.05,
            monitor_kind: MonitorKind::Gmon { ways: 64 },
            seed: 1,
            reference_engine: false,
            intra_cell_threads: 0,
            hier_region_side: 0,
            hier_change_threshold: 0.0,
            engine: EngineMode::Batched,
            events: EventScript::steady(),
            trace_record: String::new(),
            trace_replay: String::new(),
        }
    }
}

impl SimConfig {
    /// The §II-B case-study chip: a 6×6 mesh scaled down from the target
    /// system.
    pub fn case_study() -> Self {
        SimConfig {
            mesh: Mesh::new(6, 6),
            warmup_epochs: 8,
            measure_epochs: 4,
            ..Self::default()
        }
    }

    /// A small, fast configuration for tests and doctests: 4×4 chip, short
    /// epochs.
    ///
    /// `CDCS_INTRA_CELL_THREADS=<n>` forces the bank-sharded pipeline on
    /// for every test built from this config — results are bit-identical
    /// either way, so CI runs the whole suite once more with the sharded
    /// path forced on to prove exactly that.
    pub fn small_test() -> Self {
        SimConfig {
            mesh: Mesh::new(4, 4),
            epoch_cycles: 500_000,
            interval_cycles: 25_000,
            warmup_epochs: 2,
            measure_epochs: 3,
            bulk_pause_cycles: 20_000,
            background_delay_cycles: 10_000,
            background_walk_cycles: 20_000,
            monitor_sample_period: 4,
            intra_cell_threads: std::env::var("CDCS_INTRA_CELL_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            ..Self::default()
        }
    }

    /// A mega-mesh chip: `side × side` tiles (256 at 16, 1024 at 32) with
    /// the small-test time scaling, so the scenario stays runnable in CI.
    /// The hierarchy knobs default off — experiments opt in per patch
    /// (`with_hier_region_side` / `with_hier_change_threshold`), which keeps
    /// the flat-vs-hierarchical comparison inside one spec.
    pub fn mega_mesh(side: u16) -> Self {
        SimConfig {
            mesh: Mesh::square(side),
            epoch_cycles: 500_000,
            interval_cycles: 25_000,
            warmup_epochs: 2,
            measure_epochs: 3,
            bulk_pause_cycles: 20_000,
            background_delay_cycles: 10_000,
            background_walk_cycles: 20_000,
            ..Self::default()
        }
    }

    /// A sensible `intra_cell_threads` for a binary running one big cell
    /// at a time: every available core, capped at 8 (shard fan-outs flatten
    /// past the bank count over a handful of workers). Never returns 0 —
    /// even on one core the sharded pipeline's in-thread, bank-grouped
    /// drain measured ~25% faster than the batched engine's interleave on
    /// the case-study cell, and results are bit-identical regardless.
    pub fn auto_intra_cell_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
    }

    /// Number of LLC banks (one per tile).
    pub fn num_banks(&self) -> usize {
        self.mesh.num_tiles()
    }

    /// Total LLC capacity in lines.
    pub fn total_lines(&self) -> u64 {
        self.bank_lines * self.num_banks() as u64
    }

    /// Total memory bandwidth in lines per cycle.
    pub fn total_mem_bandwidth(&self) -> f64 {
        self.mem_lines_per_cycle_per_ctrl * self.mem_controllers as f64
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a message for non-positive or inconsistent parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.bank_lines == 0 {
            return Err("bank capacity must be non-zero".into());
        }
        if self.epoch_cycles == 0 || self.interval_cycles == 0 {
            return Err("epoch and interval must be non-zero".into());
        }
        if self.interval_cycles > self.epoch_cycles {
            return Err("interval longer than epoch".into());
        }
        if self.measure_epochs == 0 {
            return Err("need at least one measured epoch".into());
        }
        if self.mem_controllers == 0 {
            return Err("need at least one memory controller".into());
        }
        let positive = |x: f64| x > 0.0 && !x.is_nan();
        if !positive(self.mem_zero_load) || !positive(self.mem_lines_per_cycle_per_ctrl) {
            return Err("memory parameters must be positive".into());
        }
        if self.alloc_granularity == 0 {
            return Err("allocation granularity must be non-zero".into());
        }
        if self.alloc_granularity > self.bank_lines {
            return Err(format!(
                "allocation granularity ({} lines) exceeds bank capacity ({} lines)",
                self.alloc_granularity, self.bank_lines
            ));
        }
        if self.monitor_sample_period == 0 {
            return Err("monitor sample period must be non-zero".into());
        }
        if self.monitor_sets == 0 {
            return Err("monitors need at least one tag set".into());
        }
        let monitor_ways = match self.monitor_kind {
            MonitorKind::Gmon { ways } | MonitorKind::Umon { ways } => ways,
        };
        if monitor_ways == 0 {
            return Err("monitors need at least one tag way".into());
        }
        if self.hier_change_threshold.is_nan() || self.hier_change_threshold < 0.0 {
            return Err("hierarchical change threshold must be a non-negative number".into());
        }
        if self.hier_change_threshold > 0.0 && self.hier_region_side == 0 {
            return Err(
                "hier_change_threshold requires hier_region_side > 0 (warm starts are a \
                 feature of the hierarchical planner)"
                    .into(),
            );
        }
        if self.engine == EngineMode::Batched && !self.events.is_empty() {
            return Err(
                "a workload event script requires the event engine (engine = Event)".into(),
            );
        }
        if !self.trace_record.is_empty() && !self.trace_replay.is_empty() {
            return Err("trace_record and trace_replay are mutually exclusive".into());
        }
        if !self.trace_replay.is_empty() && self.engine == EngineMode::Event {
            return Err(
                "trace replay re-issues a recorded steady-state run; it cannot be combined \
                 with the event engine"
                    .into(),
            );
        }
        // Process indices are checked against the full roster at simulation
        // construction; scales are checkable here.
        self.events.validate(usize::MAX)?;
        if self.scheme.reconfigures() && self.warmup_epochs == 0 {
            // Partitioned schemes bootstrap from a placement computed with
            // no monitor history; with zero warm-up the measured window
            // starts before the first informed reconfiguration, so the
            // numbers would measure the bootstrap transient, not the scheme.
            return Err("reconfiguring schemes need at least one warm-up epoch".into());
        }
        Ok(())
    }
}

/// A declarative, serializable set of overrides on a base [`SimConfig`] —
/// the experiment API's replacement for the clone-and-mutate idiom the
/// figure binaries used to hand-roll.
///
/// Every field is optional; `None` leaves the base value untouched. The
/// `label` names the patch in reports and artifact files (an empty label
/// displays as `"base"`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigPatch {
    /// Report label (e.g. `"UMON-256w"`, `"period-2M"`).
    #[serde(default)]
    pub label: String,
    /// Overrides [`SimConfig::alloc_granularity`].
    #[serde(default)]
    pub alloc_granularity: Option<u64>,
    /// Overrides [`SimConfig::monitor_kind`].
    #[serde(default)]
    pub monitor_kind: Option<MonitorKind>,
    /// Overrides [`SimConfig::move_scheme`].
    #[serde(default)]
    pub move_scheme: Option<MoveScheme>,
    /// Overrides [`SimConfig::epoch_cycles`].
    #[serde(default)]
    pub epoch_cycles: Option<u64>,
    /// Overrides [`SimConfig::interval_cycles`].
    #[serde(default)]
    pub interval_cycles: Option<u64>,
    /// Overrides [`SimConfig::warmup_epochs`].
    #[serde(default)]
    pub warmup_epochs: Option<usize>,
    /// Overrides [`SimConfig::measure_epochs`].
    #[serde(default)]
    pub measure_epochs: Option<usize>,
    /// Overrides [`SimConfig::monitor_sample_period`].
    #[serde(default)]
    pub monitor_sample_period: Option<u32>,
    /// Overrides [`SimConfig::monitor_sets`].
    #[serde(default)]
    pub monitor_sets: Option<usize>,
    /// Overrides [`SimConfig::reconfig_benefit_factor`].
    #[serde(default)]
    pub reconfig_benefit_factor: Option<f64>,
    /// Overrides [`SimConfig::intra_cell_threads`].
    #[serde(default)]
    pub intra_cell_threads: Option<usize>,
    /// Overrides [`SimConfig::hier_region_side`].
    #[serde(default)]
    pub hier_region_side: Option<u16>,
    /// Overrides [`SimConfig::hier_change_threshold`].
    #[serde(default)]
    pub hier_change_threshold: Option<f64>,
    /// Overrides [`SimConfig::engine`].
    #[serde(default)]
    pub engine: Option<EngineMode>,
    /// Overrides [`SimConfig::events`].
    #[serde(default)]
    pub events: Option<EventScript>,
    /// Overrides [`SimConfig::trace_record`].
    #[serde(default)]
    pub trace_record: Option<String>,
    /// Overrides [`SimConfig::trace_replay`].
    #[serde(default)]
    pub trace_replay: Option<String>,
}

impl ConfigPatch {
    /// An empty patch carrying only a report label.
    pub fn named(label: impl Into<String>) -> Self {
        ConfigPatch {
            label: label.into(),
            ..Self::default()
        }
    }

    /// The label shown in reports (`"base"` for unnamed patches).
    pub fn display_label(&self) -> &str {
        if self.label.is_empty() {
            "base"
        } else {
            &self.label
        }
    }

    /// Returns whether the patch overrides nothing (label aside).
    pub fn is_identity(&self) -> bool {
        *self
            == ConfigPatch {
                label: self.label.clone(),
                ..Self::default()
            }
    }

    /// Applies every override onto `config`.
    pub fn apply(&self, config: &mut SimConfig) {
        if let Some(v) = self.alloc_granularity {
            config.alloc_granularity = v;
        }
        if let Some(v) = self.monitor_kind {
            config.monitor_kind = v;
        }
        if let Some(v) = self.move_scheme {
            config.move_scheme = v;
        }
        if let Some(v) = self.epoch_cycles {
            config.epoch_cycles = v;
        }
        if let Some(v) = self.interval_cycles {
            config.interval_cycles = v;
        }
        if let Some(v) = self.warmup_epochs {
            config.warmup_epochs = v;
        }
        if let Some(v) = self.measure_epochs {
            config.measure_epochs = v;
        }
        if let Some(v) = self.monitor_sample_period {
            config.monitor_sample_period = v;
        }
        if let Some(v) = self.monitor_sets {
            config.monitor_sets = v;
        }
        if let Some(v) = self.reconfig_benefit_factor {
            config.reconfig_benefit_factor = v;
        }
        if let Some(v) = self.intra_cell_threads {
            config.intra_cell_threads = v;
        }
        if let Some(v) = self.hier_region_side {
            config.hier_region_side = v;
        }
        if let Some(v) = self.hier_change_threshold {
            config.hier_change_threshold = v;
        }
        if let Some(v) = self.engine {
            config.engine = v;
        }
        if let Some(v) = &self.events {
            config.events = v.clone();
        }
        if let Some(v) = &self.trace_record {
            config.trace_record = v.clone();
        }
        if let Some(v) = &self.trace_replay {
            config.trace_replay = v.clone();
        }
    }

    /// Fluent setter for [`SimConfig::alloc_granularity`].
    #[must_use]
    pub fn with_alloc_granularity(mut self, lines: u64) -> Self {
        self.alloc_granularity = Some(lines);
        self
    }

    /// Fluent setter for [`SimConfig::monitor_kind`].
    #[must_use]
    pub fn with_monitor_kind(mut self, kind: MonitorKind) -> Self {
        self.monitor_kind = Some(kind);
        self
    }

    /// Fluent setter for [`SimConfig::move_scheme`].
    #[must_use]
    pub fn with_move_scheme(mut self, mv: MoveScheme) -> Self {
        self.move_scheme = Some(mv);
        self
    }

    /// Fluent setter for [`SimConfig::epoch_cycles`].
    #[must_use]
    pub fn with_epoch_cycles(mut self, cycles: u64) -> Self {
        self.epoch_cycles = Some(cycles);
        self
    }

    /// Fluent setter for [`SimConfig::interval_cycles`].
    #[must_use]
    pub fn with_interval_cycles(mut self, cycles: u64) -> Self {
        self.interval_cycles = Some(cycles);
        self
    }

    /// Fluent setter for [`SimConfig::reconfig_benefit_factor`].
    #[must_use]
    pub fn with_reconfig_benefit_factor(mut self, factor: f64) -> Self {
        self.reconfig_benefit_factor = Some(factor);
        self
    }

    /// Fluent setter for [`SimConfig::intra_cell_threads`].
    #[must_use]
    pub fn with_intra_cell_threads(mut self, workers: usize) -> Self {
        self.intra_cell_threads = Some(workers);
        self
    }

    /// Fluent setter for [`SimConfig::hier_region_side`].
    #[must_use]
    pub fn with_hier_region_side(mut self, side: u16) -> Self {
        self.hier_region_side = Some(side);
        self
    }

    /// Fluent setter for [`SimConfig::hier_change_threshold`].
    #[must_use]
    pub fn with_hier_change_threshold(mut self, threshold: f64) -> Self {
        self.hier_change_threshold = Some(threshold);
        self
    }

    /// Fluent setter for [`SimConfig::warmup_epochs`].
    #[must_use]
    pub fn with_warmup_epochs(mut self, epochs: usize) -> Self {
        self.warmup_epochs = Some(epochs);
        self
    }

    /// Fluent setter for [`SimConfig::measure_epochs`].
    #[must_use]
    pub fn with_measure_epochs(mut self, epochs: usize) -> Self {
        self.measure_epochs = Some(epochs);
        self
    }

    /// Fluent setter for [`SimConfig::engine`].
    #[must_use]
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Fluent setter for [`SimConfig::events`].
    #[must_use]
    pub fn with_events(mut self, events: EventScript) -> Self {
        self.events = Some(events);
        self
    }

    /// Fluent setter for [`SimConfig::trace_record`].
    #[must_use]
    pub fn with_trace_record(mut self, dir: impl Into<String>) -> Self {
        self.trace_record = Some(dir.into());
        self
    }

    /// Fluent setter for [`SimConfig::trace_replay`].
    #[must_use]
    pub fn with_trace_replay(mut self, index: impl Into<String>) -> Self {
        self.trace_replay = Some(index.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = SimConfig::default();
        assert_eq!(c.num_banks(), 64);
        assert_eq!(c.total_lines(), 64 * 8192); // 32 MB in lines
        assert_eq!(c.bank_latency, 9);
        assert_eq!(c.mem_controllers, 8);
        assert!((c.total_mem_bandwidth() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_defaults() {
        assert!(SimConfig::default().validate().is_ok());
        assert!(SimConfig::small_test().validate().is_ok());
        assert!(SimConfig::case_study().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let c = SimConfig {
            bank_lines: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let base = SimConfig::default();
        let c = SimConfig {
            interval_cycles: base.epoch_cycles + 1,
            ..base
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            measure_epochs: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            alloc_granularity: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_monitors() {
        let c = SimConfig {
            monitor_sets: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("tag set"));
        let c = SimConfig {
            monitor_kind: MonitorKind::Gmon { ways: 0 },
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("tag way"));
        let c = SimConfig {
            monitor_kind: MonitorKind::Umon { ways: 0 },
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("tag way"));
        let c = SimConfig {
            monitor_sample_period: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn hier_knobs_default_off_and_tolerate_old_json() {
        let c = SimConfig::default();
        assert_eq!(c.hier_region_side, 0);
        assert_eq!(c.hier_change_threshold, 0.0);
        // Configs serialized before the hierarchy existed (no hier_* keys)
        // must still deserialize, with the knobs off. The fields are the
        // struct's last, so stripping them from the JSON tail reconstructs a
        // pre-hierarchy artifact exactly.
        let json = serde_json::to_string(&c).unwrap();
        let legacy = json.replace(",\"hier_region_side\":0,\"hier_change_threshold\":0.0", "");
        assert_ne!(legacy, json, "expected to strip the hier keys");
        let back: SimConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn dynamic_knobs_default_off_and_tolerate_old_json() {
        let c = SimConfig::default();
        assert_eq!(c.engine, EngineMode::Batched);
        assert!(c.events.is_empty());
        assert!(c.trace_record.is_empty() && c.trace_replay.is_empty());
        // Configs serialized before the event engine existed (no dynamic
        // keys) must still deserialize with the knobs off. The fields are
        // the struct's last, so stripping them from the JSON tail
        // reconstructs a pre-event-engine artifact exactly.
        let json = serde_json::to_string(&c).unwrap();
        let legacy = json.replace(
            ",\"engine\":\"Batched\",\"events\":{\"events\":[]},\"trace_record\":\"\",\
             \"trace_replay\":\"\"",
            "",
        );
        assert_ne!(legacy, json, "expected to strip the dynamic keys");
        let back: SimConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn validate_checks_dynamic_knobs() {
        use cdcs_workload::{TimedEvent, WorkloadEvent};
        let script = EventScript {
            events: vec![TimedEvent {
                at_cycle: 1000,
                event: WorkloadEvent::Departure { process: 0 },
            }],
        };
        // A script without the event engine is a misconfiguration, not a
        // silent no-op.
        let c = SimConfig {
            events: script.clone(),
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("event engine"));
        let c = SimConfig {
            engine: EngineMode::Event,
            events: script,
            ..SimConfig::default()
        };
        assert!(c.validate().is_ok());
        let c = SimConfig {
            trace_record: "out/t".into(),
            trace_replay: "out/t/index.json".into(),
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("mutually exclusive"));
        let c = SimConfig {
            engine: EngineMode::Event,
            trace_replay: "out/t/index.json".into(),
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("replay"));
        let c = SimConfig {
            trace_record: "out/t".into(),
            ..SimConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn patch_applies_dynamic_overrides() {
        let patch = ConfigPatch::named("dynamic")
            .with_engine(EngineMode::Event)
            .with_warmup_epochs(1)
            .with_measure_epochs(2)
            .with_events(EventScript::generate(3, 100_000, 2))
            .with_trace_record("out/rec");
        assert!(!patch.is_identity());
        let mut c = SimConfig::default();
        patch.apply(&mut c);
        assert_eq!(c.engine, EngineMode::Event);
        assert_eq!(c.warmup_epochs, 1);
        assert_eq!(c.measure_epochs, 2);
        assert_eq!(c.events, EventScript::generate(3, 100_000, 2));
        assert_eq!(c.trace_record, "out/rec");
        let replay = ConfigPatch::named("replay").with_trace_replay("specs/t/index.json");
        let mut c = SimConfig::default();
        replay.apply(&mut c);
        assert_eq!(c.trace_replay, "specs/t/index.json");
    }

    #[test]
    fn validate_checks_hier_knobs() {
        let ok = SimConfig {
            hier_region_side: 4,
            hier_change_threshold: 0.02,
            ..SimConfig::mega_mesh(16)
        };
        assert!(ok.validate().is_ok());
        let c = SimConfig {
            hier_change_threshold: -0.1,
            hier_region_side: 4,
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("non-negative"));
        let c = SimConfig {
            hier_change_threshold: f64::NAN,
            hier_region_side: 4,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        // Warm starts without the hierarchy are a misconfiguration, not a
        // silent no-op.
        let c = SimConfig {
            hier_change_threshold: 0.02,
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("hier_region_side"));
    }

    #[test]
    fn mega_mesh_presets_have_the_advertised_tile_counts() {
        assert_eq!(SimConfig::mega_mesh(16).num_banks(), 256);
        assert_eq!(SimConfig::mega_mesh(32).num_banks(), 1024);
        assert!(SimConfig::mega_mesh(16).validate().is_ok());
        assert!(SimConfig::mega_mesh(32).validate().is_ok());
    }

    #[test]
    fn patch_applies_hier_overrides() {
        let patch = ConfigPatch::named("hier-r4")
            .with_hier_region_side(4)
            .with_hier_change_threshold(0.02);
        assert!(!patch.is_identity());
        let mut c = SimConfig::mega_mesh(16);
        patch.apply(&mut c);
        assert_eq!(c.hier_region_side, 4);
        assert_eq!(c.hier_change_threshold, 0.02);
    }

    #[test]
    fn validate_rejects_granularity_above_bank_capacity() {
        let base = SimConfig::default();
        let c = SimConfig {
            alloc_granularity: base.bank_lines + 1,
            ..base.clone()
        };
        assert!(c.validate().unwrap_err().contains("granularity"));
        // Whole-bank allocation (the §VI-C coarse-grain ablation) stays
        // legal: granularity == bank_lines.
        let c = SimConfig {
            alloc_granularity: base.bank_lines,
            ..base
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_unwarmed_reconfiguring_schemes() {
        let c = SimConfig {
            scheme: crate::Scheme::cdcs(),
            warmup_epochs: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("warm-up"));
        // Static schemes have no reconfiguration transient to warm past.
        let c = SimConfig {
            scheme: crate::Scheme::SNuca,
            warmup_epochs: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn config_patch_applies_only_set_fields() {
        let base = SimConfig::default();
        let patch = ConfigPatch::named("coarse")
            .with_alloc_granularity(8192)
            .with_move_scheme(MoveScheme::BulkInvalidate);
        assert_eq!(patch.display_label(), "coarse");
        assert!(!patch.is_identity());
        assert!(ConfigPatch::default().is_identity());
        assert_eq!(ConfigPatch::default().display_label(), "base");
        let mut patched = base.clone();
        patch.apply(&mut patched);
        assert_eq!(patched.alloc_granularity, 8192);
        assert_eq!(patched.move_scheme, MoveScheme::BulkInvalidate);
        // Untouched fields survive.
        assert_eq!(patched.epoch_cycles, base.epoch_cycles);
        assert_eq!(patched.monitor_kind, base.monitor_kind);
    }

    #[test]
    fn case_study_is_36_tiles() {
        assert_eq!(SimConfig::case_study().num_banks(), 36);
    }
}

//! Per-thread and system-level measurement.

use cdcs_mesh::TrafficStats;
use serde::{Deserialize, Serialize};

/// Per-thread counters over the measured window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadMetrics {
    /// Benchmark name of the owning process.
    pub app: String,
    /// Process index within the mix.
    pub process: usize,
    /// Thread index within the process.
    pub thread: usize,
    /// Instructions retired.
    pub instructions: f64,
    /// Cycles elapsed (including reconfiguration pauses).
    pub cycles: f64,
    /// LLC accesses issued (post-L2).
    pub accesses: u64,
    /// LLC hits.
    pub hits: u64,
    /// LLC misses (memory accesses).
    pub misses: u64,
    /// Cycles spent in L2↔LLC network round trips (on-chip latency, Eq. 2).
    pub net_cycles: f64,
    /// Cycles spent in LLC bank arrays.
    pub bank_cycles: f64,
    /// Cycles spent in memory (off-chip latency, Eq. 1, including the
    /// LLC↔controller network).
    pub mem_cycles: f64,
}

impl ThreadMetrics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }

    /// Misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions > 0.0 {
            self.misses as f64 * 1000.0 / self.instructions
        } else {
            0.0
        }
    }

    /// Average memory access time per LLC access, cycles.
    pub fn amat(&self) -> f64 {
        if self.accesses > 0 {
            (self.net_cycles + self.bank_cycles + self.mem_cycles) / self.accesses as f64
        } else {
            0.0
        }
    }

    /// Average on-chip (L2↔LLC network) latency per LLC access.
    pub fn on_chip_per_access(&self) -> f64 {
        if self.accesses > 0 {
            self.net_cycles / self.accesses as f64
        } else {
            0.0
        }
    }

    /// Average off-chip latency per LLC access.
    pub fn off_chip_per_access(&self) -> f64 {
        if self.accesses > 0 {
            self.mem_cycles / self.accesses as f64
        } else {
            0.0
        }
    }

    /// LLC hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses > 0 {
            self.hits as f64 / self.accesses as f64
        } else {
            0.0
        }
    }
}

/// Chip-level counters over the measured window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemMetrics {
    /// Measured cycles.
    pub cycles: f64,
    /// Total instructions across threads.
    pub instructions: f64,
    /// NoC traffic per class.
    pub traffic: TrafficStats,
    /// Reconfigurations performed during measurement.
    pub reconfigurations: u64,
    /// Cycles all cores were paused by bulk invalidations.
    pub pause_cycles: u64,
    /// Lines moved by demand moves (§IV-H).
    pub demand_moves: u64,
    /// Lines invalidated by the background walker.
    pub background_invalidations: u64,
    /// Lines dropped by bulk invalidations.
    pub bulk_invalidations: u64,
    /// Lines teleported by the idealized instant-move machinery.
    pub instant_moves: u64,
    /// DRAM accesses (LLC misses + writebacks).
    pub dram_accesses: u64,
}

impl SystemMetrics {
    /// Aggregate IPC across the chip.
    pub fn aggregate_ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }

    /// Flit-hops of NoC traffic per instruction (Fig. 11d's y-axis).
    pub fn traffic_per_instruction(&self) -> f64 {
        if self.instructions > 0.0 {
            self.traffic.total_flit_hops() as f64 / self.instructions
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let m = ThreadMetrics {
            instructions: 2000.0,
            cycles: 4000.0,
            accesses: 100,
            hits: 80,
            misses: 20,
            net_cycles: 600.0,
            bank_cycles: 900.0,
            mem_cycles: 3000.0,
            ..Default::default()
        };
        assert!((m.ipc() - 0.5).abs() < 1e-12);
        assert!((m.mpki() - 10.0).abs() < 1e-12);
        assert!((m.amat() - 45.0).abs() < 1e-12);
        assert!((m.on_chip_per_access() - 6.0).abs() < 1e-12);
        assert!((m.off_chip_per_access() - 30.0).abs() < 1e-12);
        assert!((m.hit_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = ThreadMetrics::default();
        assert_eq!(m.ipc(), 0.0);
        assert_eq!(m.amat(), 0.0);
        assert_eq!(m.mpki(), 0.0);
        assert_eq!(m.hit_ratio(), 0.0);
        let s = SystemMetrics::default();
        assert_eq!(s.aggregate_ipc(), 0.0);
        assert_eq!(s.traffic_per_instruction(), 0.0);
    }
}

#![forbid(unsafe_code)]
//! Trace-driven tiled-CMP NUCA simulator for the CDCS reproduction.
//!
//! This crate is the evaluation substrate standing in for the paper's
//! zsim-based execution-driven setup (see `DESIGN.md` §1): a 64-tile CMP
//! (Table 2) simulated at LLC-access granularity with an interval-based core
//! model.
//!
//! * [`SimConfig`] — the modeled system (Table 2 defaults, time-scaled).
//! * [`Scheme`] — which NUCA organization runs: S-NUCA, R-NUCA, Jigsaw+C,
//!   Jigsaw+R, or CDCS (with feature toggles), plus the line-movement
//!   machinery used at reconfigurations ([`MoveScheme`]: instant moves, bulk
//!   invalidations, or demand moves + background invalidations, §IV-H).
//! * [`Simulation`] — the engine: synthetic per-thread access streams drive
//!   partitioned LLC banks through the VTB mapping; per-interval AMAT feeds
//!   back into per-thread IPC; planners reconfigure at epoch boundaries
//!   from GMON-measured miss curves.
//! * [`SimResult`] / [`metrics`] — per-thread and system-level outputs:
//!   IPC, AMAT decomposition (on-chip vs off-chip), traffic breakdown,
//!   energy breakdown — everything the paper's figures plot.
//! * [`runner`] — weighted-speedup methodology helpers: alone-IPC
//!   calibration runs and scheme comparisons normalized to S-NUCA.
//! * [`session`] — the streaming execution layer under every grid wave:
//!   a [`GridSession`] claims cells into a bounded worker pool, streams
//!   completed `(cell, result)` pairs as they finish, and supports
//!   cancellation and live progress (what the `cdcs-serve` experiment
//!   daemon schedules concurrent jobs on).
//!
//! # Example: one small mix under two schemes
//!
//! ```
//! use cdcs_sim::{Scheme, SimConfig, Simulation};
//! use cdcs_workload::{MixSpec, WorkloadMix};
//!
//! let mut config = SimConfig::small_test(); // 4x4 chip, short epochs
//! let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
//!     "omnet".into(), "milc".into(),
//! ])).unwrap();
//! config.scheme = Scheme::SNuca;
//! let snuca = Simulation::new(config.clone(), mix.clone()).unwrap().run();
//! config.scheme = Scheme::cdcs();
//! let cdcs = Simulation::new(config, mix).unwrap().run();
//! // Both simulations ran the same per-thread accounting.
//! assert_eq!(snuca.threads.len(), cdcs.threads.len());
//! ```

mod config;
mod energy;
mod engine;
mod llc;
mod memory;
pub mod metrics;
pub mod runner;
mod scheme;
pub mod session;

pub use config::{ConfigPatch, EngineMode, MonitorKind, SimConfig};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use engine::{SimResult, Simulation, SHARD_SEQ_THRESHOLD};
pub use memory::MemoryModel;
pub use metrics::{SystemMetrics, ThreadMetrics};
pub use scheme::{MoveScheme, Scheme, ThreadSched};
pub use session::{CancelToken, CellDone, CellHook, GridSession, SessionOptions, SessionProgress};

//! Weighted-speedup methodology (§V) and scheme-comparison helpers.
//!
//! The paper reports weighted speedup over S-NUCA: each process's progress
//! rate is normalized to its *alone* rate, summed across the mix, and the
//! resulting throughput metric is divided by S-NUCA's. Our fixed-work
//! equivalent: every simulation measures the same wall-clock window with
//! stationary workloads, so per-window IPC is the progress rate (FIESTA's
//! sample balancing addresses non-stationarity that synthetic streams do
//! not have).

use crate::config::ConfigPatch;
use crate::session::GridSession;
use crate::{Scheme, SimConfig, SimResult, Simulation};
use cdcs_workload::{AppProfile, WorkloadMix};
use serde::{Deserialize, Serialize};

/// How a grid cell drives the simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellRun {
    /// The standard warm-up + measurement window ([`Simulation::run`]).
    #[default]
    Steady,
    /// A Fig. 17-style reconfiguration trace ([`Simulation::run_trace`]):
    /// `pre_intervals` unmeasured intervals, then `post_intervals` measured
    /// ones straddling the mid-trace reconfiguration.
    Trace {
        /// Unmeasured warm-up intervals before the trace window.
        pre_intervals: usize,
        /// Measured intervals (reconfiguration in the middle).
        post_intervals: usize,
    },
}

/// One cell of an experiment grid: a scheme, a mix, and optional per-cell
/// overrides — a seed, a [`ConfigPatch`], and the run mode (deterministic
/// regardless of which worker runs the cell or in what order).
///
/// Wire-safe: a cell (with its config) is everything a remote fleet
/// runner needs to execute it, so the whole struct serializes, and every
/// field is `#[serde(default)]` so version-skewed peers parse leniently
/// (the golden-coupling lint pins this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridCell {
    /// NUCA scheme to simulate.
    #[serde(default)]
    pub scheme: Scheme,
    /// Workload to run.
    #[serde(default)]
    pub mix: WorkloadMix,
    /// Overrides `config.seed` for this cell when set.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Config overrides applied before the scheme/seed for this cell,
    /// letting one grid wave span config axes (granularity, monitors,
    /// movement machinery, epoch length, ...).
    #[serde(default)]
    pub patch: Option<ConfigPatch>,
    /// Steady-state measurement or a reconfiguration trace.
    #[serde(default)]
    pub run: CellRun,
}

impl GridCell {
    /// A cell running `mix` under `scheme` with the sweep config's seed.
    pub fn new(scheme: Scheme, mix: WorkloadMix) -> Self {
        GridCell {
            scheme,
            mix,
            seed: None,
            patch: None,
            run: CellRun::Steady,
        }
    }

    /// Pins this cell to an explicit seed (for `scheme × mix × seed` fans).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Applies `patch` to this cell's config (for config-axis fans).
    #[must_use]
    pub fn with_patch(mut self, patch: ConfigPatch) -> Self {
        self.patch = Some(patch);
        self
    }

    /// Switches this cell to a reconfiguration trace run.
    #[must_use]
    pub fn with_run(mut self, run: CellRun) -> Self {
        self.run = run;
        self
    }
}

/// Runs one grid cell: `config` with the cell's patch, scheme, and seed
/// applied, driven in the cell's run mode.
///
/// Public because it is the fleet execution seam: a remote `cdcs-runner`
/// receives `(config, cell)` over the wire and must run it exactly as a
/// local session worker would — same entry point, bit-identical result.
///
/// # Errors
///
/// Returns simulation construction errors.
pub fn run_cell(config: &SimConfig, cell: &GridCell) -> Result<SimResult, String> {
    let mut cfg = config.clone();
    if let Some(patch) = &cell.patch {
        patch.apply(&mut cfg);
    }
    cfg.scheme = cell.scheme;
    if let Some(seed) = cell.seed {
        cfg.seed = seed;
    }
    let sim = Simulation::new(cfg, cell.mix.clone())?;
    Ok(match cell.run {
        CellRun::Steady => sim.run(),
        CellRun::Trace {
            pre_intervals,
            post_intervals,
        } => sim.run_trace(pre_intervals, post_intervals),
    })
}

/// Collects a finished-or-finishing session into cell-order results,
/// returning the first error in *cell* order (the pre-session `run_grid`
/// contract). All cells run to completion even when an early one errors.
fn collect_session(session: GridSession) -> Result<Vec<SimResult>, String> {
    session
        .join()
        .into_iter()
        .map(|slot| slot.expect("uncancelled session issues every cell"))
        .collect()
}

/// Runs every cell of an experiment grid across all cores.
///
/// Thin collector over a [`GridSession`]: cells are claimed from a shared
/// queue by a bounded worker pool (simulation cost varies widely between
/// schemes and mixes, so static partitioning would leave cores idle) and
/// results stream back as they finish. Every cell derives its RNG state
/// from `(config, cell)` alone — never from worker identity or execution
/// order — so the results are identical to [`run_grid_serial`]
/// cell-for-cell, byte-for-byte (the equivalence tests assert this).
/// `RAYON_NUM_THREADS=1` forces serial execution through the same
/// claim/run path. Callers that want the stream itself — progress,
/// cancellation, per-cell latency — hold the session directly (the
/// `cdcs-serve` daemon does).
///
/// When `config.intra_cell_threads` asks for bank-sharded intra-cell
/// parallelism too, the inner worker count is clamped so that
/// `outer × inner` never exceeds the machine: wide grids keep cell-level
/// parallelism (the better-scaling axis) and shed inner workers; a 1-cell
/// "grid" keeps its full intra-cell fan-out (see
/// [`crate::session::clamp_intra_cell`]). The clamp cannot change any
/// result — sharded results are bit-identical for every worker count.
///
/// # Errors
///
/// Returns the first cell's construction error, if any.
pub fn run_grid(config: &SimConfig, cells: &[GridCell]) -> Result<Vec<SimResult>, String> {
    let machine = rayon::current_num_threads();
    let outer = machine.min(cells.len().max(1));
    if outer <= 1 {
        // One-worker pool: drive the session on the calling thread (no
        // spawns), preserving the intra-cell clamp semantics.
        let session = GridSession::queued(
            &crate::session::clamp_intra_cell(config, outer),
            cells.to_vec(),
        );
        session.drive();
        return collect_session(session);
    }
    collect_session(GridSession::spawn(config, cells.to_vec(), outer))
}

/// Serial reference for [`run_grid`]: same cells, same order, one core —
/// a session driven to completion on the calling thread, with no pool
/// clamp applied to `config.intra_cell_threads`.
///
/// # Errors
///
/// Returns the first cell's construction error, if any.
pub fn run_grid_serial(config: &SimConfig, cells: &[GridCell]) -> Result<Vec<SimResult>, String> {
    let session = GridSession::queued(config, cells.to_vec());
    session.drive();
    collect_session(session)
}

/// Runs one process alone on the chip under S-NUCA and returns its
/// performance (sum of thread IPCs — the alone-IPC denominator of weighted
/// speedup).
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn alone_perf(config: &SimConfig, app: &AppProfile) -> Result<f64, String> {
    let mut cfg = config.clone();
    cfg.scheme = Scheme::SNuca;
    let mix = WorkloadMix::new(vec![app.clone()], cfg.seed);
    let result = Simulation::new(cfg, mix)?.run();
    Ok(result.process_perf()[0])
}

/// Alone performance for every process of a mix (cached by name — identical
/// profiles share one alone run). The unique apps' alone runs fan out over
/// [`run_grid`], so an n-app mix costs one parallel wave instead of n
/// serial simulations; values are identical to running [`alone_perf`] per
/// process.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn alone_perf_for_mix(config: &SimConfig, mix: &WorkloadMix) -> Result<Vec<f64>, String> {
    // Unique apps in first-appearance order.
    let mut names: Vec<&str> = Vec::new();
    let mut unique: Vec<&AppProfile> = Vec::new();
    for app in mix.processes() {
        if !names.contains(&app.name.as_str()) {
            names.push(&app.name);
            unique.push(app);
        }
    }
    let cells: Vec<GridCell> = unique
        .iter()
        .map(|app| {
            GridCell::new(
                Scheme::SNuca,
                WorkloadMix::new(vec![(*app).clone()], config.seed),
            )
        })
        .collect();
    let results = run_grid(config, &cells)?;
    let perf: Vec<f64> = results.iter().map(|r| r.process_perf()[0]).collect();
    Ok(mix
        .processes()
        .iter()
        .map(|app| {
            let i = names
                .iter()
                .position(|&n| n == app.name)
                .expect("app seen above");
            perf[i]
        })
        .collect())
}

/// Raw weighted speedup of a result against per-process alone performance:
/// `Σ_p perf_p / alone_p` (not yet normalized to S-NUCA).
///
/// # Panics
///
/// Panics if `alone` length mismatches the result's process count or any
/// alone perf is non-positive.
pub fn raw_weighted_speedup(result: &SimResult, alone: &[f64]) -> f64 {
    let perf = result.process_perf();
    assert_eq!(perf.len(), alone.len(), "one alone perf per process");
    perf.iter()
        .zip(alone)
        .map(|(&p, &a)| {
            assert!(a > 0.0, "alone perf must be positive");
            p / a
        })
        .sum()
}

/// Weighted speedup of `result` over `baseline` (the paper's y-axis:
/// "weighted speedup vs S-NUCA").
pub fn weighted_speedup_vs(result: &SimResult, baseline: &SimResult, alone: &[f64]) -> f64 {
    raw_weighted_speedup(result, alone) / raw_weighted_speedup(baseline, alone)
}

/// Runs `mix` under `scheme`, reusing `config` for everything else.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn run_scheme(
    config: &SimConfig,
    mix: &WorkloadMix,
    scheme: Scheme,
) -> Result<SimResult, String> {
    let mut cfg = config.clone();
    cfg.scheme = scheme;
    Ok(Simulation::new(cfg, mix.clone())?.run())
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice or non-positive entries.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "gmean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcs_workload::MixSpec;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        gmean(&[1.0, 0.0]);
    }

    #[test]
    fn weighted_speedup_of_baseline_is_one() {
        let config = SimConfig::small_test();
        let mix = WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()]))
            .unwrap();
        let alone = alone_perf_for_mix(&config, &mix).unwrap();
        let snuca = run_scheme(&config, &mix, Scheme::SNuca).unwrap();
        let ws = weighted_speedup_vs(&snuca, &snuca, &alone);
        assert!((ws - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alone_cache_reuses_runs() {
        let config = SimConfig::small_test();
        let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
            "milc".into(),
            "milc".into(),
            "milc".into(),
        ]))
        .unwrap();
        let alone = alone_perf_for_mix(&config, &mix).unwrap();
        assert_eq!(alone.len(), 3);
        assert_eq!(alone[0], alone[1]);
        assert_eq!(alone[1], alone[2]);
    }

    #[test]
    fn alone_perf_is_positive() {
        let config = SimConfig::small_test();
        let app = cdcs_workload::spec::by_name("calculix").unwrap();
        let p = alone_perf(&config, app).unwrap();
        assert!(p > 0.1, "alone perf {p}");
    }

    #[test]
    fn grid_matches_serial_cell_for_cell() {
        let config = SimConfig::small_test();
        let mixes = [
            WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()]))
                .unwrap(),
            WorkloadMix::from_spec(&MixSpec::Named(vec!["bzip2".into(), "omnet".into()])).unwrap(),
        ];
        let mut cells = Vec::new();
        for mix in &mixes {
            for scheme in [Scheme::SNuca, Scheme::cdcs()] {
                cells.push(GridCell::new(scheme, mix.clone()));
            }
        }
        cells.push(GridCell::new(Scheme::SNuca, mixes[0].clone()).with_seed(99));
        // Force the multi-worker path even on single-core runners so the
        // fan-out machinery (not just its serial fallback) is what's
        // tested; the pool scopes the count to this closure, not the
        // process.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .expect("pool");
        let parallel = pool.install(|| run_grid(&config, &cells)).unwrap();
        let serial = run_grid_serial(&config, &cells).unwrap();
        assert_eq!(parallel.len(), cells.len());
        for (i, (p, s)) in parallel.iter().zip(&serial).enumerate() {
            assert_eq!(p, s, "cell {i} diverged between parallel and serial");
        }
        // The seed override must actually change the cell's stream.
        assert_ne!(
            parallel[0].system.instructions,
            parallel[4].system.instructions
        );
    }

    #[test]
    fn parallel_alone_perf_matches_per_process_runs() {
        let config = SimConfig::small_test();
        let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
            "calculix".into(),
            "milc".into(),
            "calculix".into(),
        ]))
        .unwrap();
        let fast = alone_perf_for_mix(&config, &mix).unwrap();
        let slow: Vec<f64> = mix
            .processes()
            .iter()
            .map(|app| alone_perf(&config, app).unwrap())
            .collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn patched_cells_match_patched_configs() {
        let config = SimConfig::small_test();
        let mix = WorkloadMix::from_spec(&MixSpec::Named(vec!["calculix".into(), "milc".into()]))
            .unwrap();
        let patch = ConfigPatch::named("coarse").with_alloc_granularity(config.bank_lines);
        let cells = [
            GridCell::new(Scheme::cdcs(), mix.clone()),
            GridCell::new(Scheme::cdcs(), mix.clone()).with_patch(patch.clone()),
        ];
        let results = run_grid(&config, &cells).unwrap();
        // The patched cell equals running the mutated config directly...
        let mut coarse_cfg = config.clone();
        patch.apply(&mut coarse_cfg);
        let direct = run_scheme(&coarse_cfg, &mix, Scheme::cdcs()).unwrap();
        assert_eq!(results[1], direct);
        // ...and differs from the unpatched cell (the knob is load-bearing).
        assert_ne!(results[0], results[1]);
    }

    #[test]
    fn trace_cells_match_run_trace() {
        let mut config = SimConfig::small_test();
        config.reconfig_benefit_factor = 0.0;
        let mix =
            WorkloadMix::from_spec(&MixSpec::Named(vec!["omnet".into(), "milc".into()])).unwrap();
        let cell = GridCell::new(Scheme::cdcs(), mix.clone()).with_run(CellRun::Trace {
            pre_intervals: 10,
            post_intervals: 5,
        });
        let via_grid = run_grid(&config, std::slice::from_ref(&cell)).unwrap();
        let mut cfg = config.clone();
        cfg.scheme = Scheme::cdcs();
        let direct = Simulation::new(cfg, mix).unwrap().run_trace(10, 5);
        assert_eq!(via_grid[0], direct);
        assert_eq!(via_grid[0].ipc_trace.len(), 5);
    }

    #[test]
    fn grid_propagates_construction_errors() {
        let mut config = SimConfig::small_test();
        config.bank_lines = 0; // invalid
        let mix = WorkloadMix::from_spec(&MixSpec::Named(vec!["milc".into()])).unwrap();
        assert!(run_grid(&config, &[GridCell::new(Scheme::SNuca, mix)]).is_err());
    }
}

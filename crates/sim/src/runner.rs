//! Weighted-speedup methodology (§V) and scheme-comparison helpers.
//!
//! The paper reports weighted speedup over S-NUCA: each process's progress
//! rate is normalized to its *alone* rate, summed across the mix, and the
//! resulting throughput metric is divided by S-NUCA's. Our fixed-work
//! equivalent: every simulation measures the same wall-clock window with
//! stationary workloads, so per-window IPC is the progress rate (FIESTA's
//! sample balancing addresses non-stationarity that synthetic streams do
//! not have).

use crate::{Scheme, SimConfig, SimResult, Simulation};
use cdcs_workload::{AppProfile, WorkloadMix};

/// Runs one process alone on the chip under S-NUCA and returns its
/// performance (sum of thread IPCs — the alone-IPC denominator of weighted
/// speedup).
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn alone_perf(config: &SimConfig, app: &AppProfile) -> Result<f64, String> {
    let mut cfg = config.clone();
    cfg.scheme = Scheme::SNuca;
    let mix = WorkloadMix::new(vec![app.clone()], cfg.seed);
    let result = Simulation::new(cfg, mix)?.run();
    Ok(result.process_perf()[0])
}

/// Alone performance for every process of a mix (cached by name — identical
/// profiles share one alone run).
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn alone_perf_for_mix(config: &SimConfig, mix: &WorkloadMix) -> Result<Vec<f64>, String> {
    let mut cache: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(mix.processes().len());
    for app in mix.processes() {
        let perf = match cache.get(&app.name) {
            Some(&p) => p,
            None => {
                let p = alone_perf(config, app)?;
                cache.insert(app.name.clone(), p);
                p
            }
        };
        out.push(perf);
    }
    Ok(out)
}

/// Raw weighted speedup of a result against per-process alone performance:
/// `Σ_p perf_p / alone_p` (not yet normalized to S-NUCA).
///
/// # Panics
///
/// Panics if `alone` length mismatches the result's process count or any
/// alone perf is non-positive.
pub fn raw_weighted_speedup(result: &SimResult, alone: &[f64]) -> f64 {
    let perf = result.process_perf();
    assert_eq!(perf.len(), alone.len(), "one alone perf per process");
    perf.iter()
        .zip(alone)
        .map(|(&p, &a)| {
            assert!(a > 0.0, "alone perf must be positive");
            p / a
        })
        .sum()
}

/// Weighted speedup of `result` over `baseline` (the paper's y-axis:
/// "weighted speedup vs S-NUCA").
pub fn weighted_speedup_vs(result: &SimResult, baseline: &SimResult, alone: &[f64]) -> f64 {
    raw_weighted_speedup(result, alone) / raw_weighted_speedup(baseline, alone)
}

/// Runs `mix` under `scheme`, reusing `config` for everything else.
///
/// # Errors
///
/// Propagates simulation construction errors.
pub fn run_scheme(
    config: &SimConfig,
    mix: &WorkloadMix,
    scheme: Scheme,
) -> Result<SimResult, String> {
    let mut cfg = config.clone();
    cfg.scheme = scheme;
    Ok(Simulation::new(cfg, mix.clone())?.run())
}

/// Geometric mean.
///
/// # Panics
///
/// Panics on an empty slice or non-positive entries.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "gmean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcs_workload::MixSpec;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gmean_rejects_zero() {
        gmean(&[1.0, 0.0]);
    }

    #[test]
    fn weighted_speedup_of_baseline_is_one() {
        let config = SimConfig::small_test();
        let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
            "calculix".into(),
            "milc".into(),
        ]))
        .unwrap();
        let alone = alone_perf_for_mix(&config, &mix).unwrap();
        let snuca = run_scheme(&config, &mix, Scheme::SNuca).unwrap();
        let ws = weighted_speedup_vs(&snuca, &snuca, &alone);
        assert!((ws - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alone_cache_reuses_runs() {
        let config = SimConfig::small_test();
        let mix = WorkloadMix::from_spec(&MixSpec::Named(vec![
            "milc".into(),
            "milc".into(),
            "milc".into(),
        ]))
        .unwrap();
        let alone = alone_perf_for_mix(&config, &mix).unwrap();
        assert_eq!(alone.len(), 3);
        assert_eq!(alone[0], alone[1]);
        assert_eq!(alone[1], alone[2]);
    }

    #[test]
    fn alone_perf_is_positive() {
        let config = SimConfig::small_test();
        let app = cdcs_workload::spec::by_name("calculix").unwrap();
        let p = alone_perf(&config, app).unwrap();
        assert!(p > 0.1, "alone perf {p}");
    }
}

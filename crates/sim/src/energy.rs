//! Event-based energy model (the Fig. 11e breakdown).
//!
//! The paper derives energy from McPAT (22 nm) and Micron DDR3L datasheets.
//! We use fixed per-event energies of representative magnitude for the same
//! component classes; Fig. 11e compares *relative* energy per instruction
//! across schemes, which depends on the event counts the simulator measures
//! (cycles, instructions, flit-hops, LLC and DRAM accesses), not on the
//! absolute constants.

use serde::{Deserialize, Serialize};

/// Per-event energies, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Chip + DRAM static energy per cycle (≈30 W at 2 GHz).
    pub static_per_cycle: f64,
    /// Core dynamic energy per instruction (lean 2-way OOO).
    pub core_per_instruction: f64,
    /// NoC energy per flit-hop (link + router traversal, 128-bit flits).
    pub noc_per_flit_hop: f64,
    /// LLC bank access energy (512 KB bank read).
    pub llc_per_access: f64,
    /// DRAM energy per 64 B line transferred.
    pub dram_per_access: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            static_per_cycle: 15.0,
            core_per_instruction: 0.35,
            noc_per_flit_hop: 0.08,
            llc_per_access: 0.8,
            dram_per_access: 20.0,
        }
    }
}

/// An energy total split by component, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Static (leakage + refresh).
    pub static_nj: f64,
    /// Core dynamic.
    pub core_nj: f64,
    /// NoC dynamic.
    pub net_nj: f64,
    /// LLC dynamic.
    pub llc_nj: f64,
    /// DRAM dynamic.
    pub mem_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.static_nj + self.core_nj + self.net_nj + self.llc_nj + self.mem_nj
    }

    /// Energy per instruction given the instruction count.
    pub fn per_instruction(&self, instructions: f64) -> f64 {
        if instructions > 0.0 {
            self.total() / instructions
        } else {
            0.0
        }
    }
}

impl EnergyModel {
    /// Computes the breakdown from measured event counts.
    pub fn compute(
        &self,
        cycles: f64,
        instructions: f64,
        llc_accesses: u64,
        flit_hops: u64,
        dram_accesses: u64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            static_nj: cycles * self.static_per_cycle,
            core_nj: instructions * self.core_per_instruction,
            net_nj: flit_hops as f64 * self.noc_per_flit_hop,
            llc_nj: llc_accesses as f64 * self.llc_per_access,
            mem_nj: dram_accesses as f64 * self.dram_per_access,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums() {
        let model = EnergyModel::default();
        let e = model.compute(1000.0, 2000.0, 10, 100, 5);
        assert!((e.static_nj - 15_000.0).abs() < 1e-9);
        assert!((e.core_nj - 700.0).abs() < 1e-9);
        assert!((e.net_nj - 8.0).abs() < 1e-9);
        assert!((e.llc_nj - 8.0).abs() < 1e-9);
        assert!((e.mem_nj - 100.0).abs() < 1e-9);
        assert!((e.total() - 15_816.0).abs() < 1e-9);
        assert!((e.per_instruction(2000.0) - 7.908).abs() < 1e-9);
    }

    #[test]
    fn faster_execution_lowers_static_share() {
        // The Fig. 11e effect: "static energy decreases with higher
        // performance, as each instruction takes fewer cycles".
        let model = EnergyModel::default();
        let slow = model.compute(4000.0, 1000.0, 100, 100, 50);
        let fast = model.compute(2000.0, 1000.0, 100, 100, 50);
        assert!(fast.per_instruction(1000.0) < slow.per_instruction(1000.0));
    }

    #[test]
    fn zero_instructions_guarded() {
        assert_eq!(EnergyBreakdown::default().per_instruction(0.0), 0.0);
    }
}

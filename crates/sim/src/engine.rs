//! The interval-based simulation engine.
//!
//! Time advances in fixed intervals. Each interval, every thread's current
//! IPC estimate sets its instruction and LLC-access budget; accesses from
//! all threads are interleaved round-robin into the LLC (so capacity inside
//! shared structures is contended realistically); the measured average
//! memory access time then updates each thread's IPC for the next interval.
//! This is the classic interval-simulation approach (Sniper-style), which
//! reproduces the feedback the paper's results hinge on: placement →
//! latency → IPC → access rate → bandwidth pressure.
//!
//! At every epoch boundary, partitioned schemes (Jigsaw, CDCS) read their
//! GMONs, build a [`PlacementProblem`], run their planner, and apply the new
//! placement through the §IV-H movement machinery.

use crate::config::{EngineMode, SimConfig};
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::llc::{lookup_result, Llc, LookupResult, Route};
use crate::memory::MemoryModel;
use crate::metrics::{SystemMetrics, ThreadMetrics};
use crate::scheme::{MoveScheme, Scheme, ThreadSched};
use cdcs_cache::monitor::{Gmon, GmonConfig, Monitor, Umon, UmonConfig};

use cdcs_cache::{BankId, Line, MissCurve};
use cdcs_core::policy::{
    clustered_cores, random_cores, CdcsPlanner, HierarchicalPlanner, JigsawPlanner, RNucaPolicy,
};
use cdcs_core::{
    Placement, PlacementProblem, PlanScratch, SystemParams, ThreadInfo, VcInfo, VcKind,
};
use cdcs_mesh::{
    DistanceTables, MemCtrlPlacement, PortDistanceTables, TileId, Topology, TrafficClass,
};
use cdcs_workload::trace::{write_trace, TraceRecord};
use cdcs_workload::{
    AccessStream, StreamTarget, ThreadSource, TimedEvent, TraceSource, WorkloadEvent, WorkloadMix,
};
use rayon::prelude::*;

/// Per-thread simulation state.
#[derive(Debug)]
struct ThreadState {
    process: usize,
    apki: f64,
    ipc0: f64,
    mlp: f64,
    source: ThreadSource,
    vc_private: u32,
    vc_shared: Option<u32>,
    /// Current IPC estimate (updated each interval).
    ipc: f64,
    /// Fractional access budget carried between intervals.
    carry: f64,
    /// Whether the thread currently runs. Threads of scripted-arrival
    /// processes start inactive; a departure clears it for good. Inactive
    /// threads retire nothing and issue nothing — always `true` outside
    /// the event engine.
    active: bool,
    /// First cycle the thread may issue again after an
    /// [`WorkloadEvent::IdleGap`] (0 = not idle). Cycles still pass for an
    /// idle thread; instructions do not.
    idle_until: u64,
    /// Access-rate multiplier from an active [`WorkloadEvent::RateBurst`]
    /// (1.0 = steady). Multiplies the effective APKI in the budget and
    /// IPC-feedback formulas; at exactly 1.0 both are bit-identical to the
    /// unscaled computation (IEEE multiplication by 1.0 is exact).
    rate_scale: f64,
    /// Interval accumulators.
    iv_accesses: u64,
    iv_latency: f64,
    /// Epoch access counts per VC class: (private, shared).
    ep_private: f64,
    ep_shared: f64,
    metrics: ThreadMetrics,
}

/// Result of a simulation run.
///
/// `PartialEq` compares every counter and trace point exactly — the
/// parallel-runner equivalence tests assert cell-for-cell identity between
/// [`crate::runner::run_grid`] and serial execution with it, and the
/// experiment-artifact tests assert exact JSON round-trips.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimResult {
    /// Scheme display name.
    pub scheme: String,
    /// Per-thread metrics over the measured window.
    pub threads: Vec<ThreadMetrics>,
    /// Chip-level metrics over the measured window.
    pub system: SystemMetrics,
    /// Energy breakdown over the measured window.
    pub energy: EnergyBreakdown,
    /// Aggregate-IPC trace: one `(end_cycle, aggregate_ipc)` point per
    /// interval of the measured window (used by the Fig. 17 harness).
    pub ipc_trace: Vec<(u64, f64)>,
}

impl SimResult {
    /// Per-process performance: the sum of thread IPCs of each process.
    /// (For multi-threaded apps this aggregate progress rate stands in for
    /// the paper's heartbeat-based ROI progress; see `DESIGN.md`.)
    pub fn process_perf(&self) -> Vec<f64> {
        let n = self
            .threads
            .iter()
            .map(|t| t.process)
            .max()
            .map_or(0, |m| m + 1);
        let mut perf = vec![0.0; n];
        for t in &self.threads {
            perf[t.process] += t.ipc();
        }
        perf
    }

    /// Average on-chip (L2↔LLC network) cycles per LLC access across
    /// threads, access-weighted (Fig. 11b's metric).
    pub fn mean_on_chip_latency(&self) -> f64 {
        let (num, den) = self
            .threads
            .iter()
            .fold((0.0, 0u64), |(n, d), t| (n + t.net_cycles, d + t.accesses));
        if den > 0 {
            num / den as f64
        } else {
            0.0
        }
    }

    /// Average off-chip cycles per LLC access (Fig. 11c's metric).
    pub fn mean_off_chip_latency(&self) -> f64 {
        let (num, den) = self
            .threads
            .iter()
            .fold((0.0, 0u64), |(n, d), t| (n + t.mem_cycles, d + t.accesses));
        if den > 0 {
            num / den as f64
        } else {
            0.0
        }
    }
}

/// Reusable per-interval access buffers for the batched engine: every
/// thread's interval accesses are generated up front into these flat
/// vectors (grouped by thread, `offsets` delimiting each thread's run),
/// then drained in the same round-robin order the one-at-a-time reference
/// path issues them. Buffers grow to the largest interval seen and are
/// reused for the rest of the simulation.
#[derive(Debug, Default)]
struct AccessBatch {
    /// Per-thread access budgets for the current interval.
    budgets: Vec<u64>,
    /// One packed word per access: the line address (`vc << 40 | offset`,
    /// which also encodes the target VC in bits 40..62) plus the stream
    /// class in bits 62..63. One load per access in the drain loop.
    acc: Vec<u64>,
    /// `offsets[ti]..offsets[ti + 1]` delimit thread `ti`'s accesses.
    offsets: Vec<usize>,
    /// Per-thread drain cursor for the round-robin interleave.
    cursor: Vec<usize>,
    /// Threads with budget left in the current drain segment (id order).
    active: Vec<u32>,
}

/// Mask selecting the line address out of a packed [`AccessBatch`] word.
const ACC_LINE_MASK: u64 = (1 << 62) - 1;

/// Packed-word bit marking a process-shared access (bit 62); bit 63 marks a
/// global access. Offsets stay far below 2^40 and VC ids far below 2^22, so
/// the line address never touches these bits.
const ACC_SHARED: u64 = 1 << 62;
const ACC_GLOBAL: u64 = 1 << 63;

/// Decodes a packed access word into `(vc, target, line)`.
#[inline]
fn unpack_access(acc: u64) -> (u32, StreamTarget, Line) {
    let target = if acc & (ACC_SHARED | ACC_GLOBAL) == 0 {
        StreamTarget::ThreadPrivate
    } else if acc & ACC_SHARED != 0 {
        StreamTarget::ProcessShared
    } else {
        StreamTarget::Global
    };
    let line = acc & ACC_LINE_MASK;
    ((line >> 40) as u32, target, Line(line))
}

/// Interval size (in accesses) below which the sharded pipeline drains on
/// one in-thread worker instead of spawning the fan-out: a scoped worker
/// costs tens of microseconds to start, so a small interval is processed
/// faster than it can be fanned out. Wall-clock policy only — sharded
/// results are bit-identical for every worker count. Public so the
/// equivalence tests can assert their intervals are big enough to force
/// genuine multi-worker fan-outs.
pub const SHARD_SEQ_THRESHOLD: usize = 8192;

/// Packed [`Route`] word for the sharded pipeline: bits `0..15` the home
/// bank, bit 15 the bypass flag, bits `16..32` the shadow-window old bank
/// plus one (0 = none). Bank ids are tile ids, far below 2^15.
const ROUTE_BYPASS: u32 = 1 << 15;
const ROUTE_BANK_MASK: u32 = ROUTE_BYPASS - 1;

#[inline]
fn pack_route(r: Route) -> u32 {
    if r.bypass {
        return ROUTE_BYPASS;
    }
    let old = r.old_bank.map_or(0, |b| u32::from(b.0) + 1);
    u32::from(r.bank.0) | (old << 16)
}

#[inline]
fn unpack_route(w: u32) -> Route {
    Route {
        bank: BankId((w & ROUTE_BANK_MASK) as u16),
        bypass: w & ROUTE_BYPASS != 0,
        old_bank: match w >> 16 {
            0 => None,
            b => Some(BankId((b - 1) as u16)),
        },
    }
}

/// Reusable buffers of the bank-sharded interval pipeline
/// (`SimConfig::intra_cell_threads > 0`). One interval runs in four phases:
///
/// 1. **Generate + route (parallel over threads).** Each thread's accesses
///    are drawn into its disjoint window of the flat batch buffer (budgets
///    determine the windows up front), its private-VC monitor records
///    replayed, and every access routed to its home bank through the pure
///    [`Llc::route`] — per-thread streams are independent RNGs and a
///    private monitor belongs to exactly one thread, so this fan-out
///    reproduces the serial draws byte for byte.
/// 2. **Plan (sequential).** The round-robin drain order is materialized
///    into `order`, each non-bypass access is appended to its home bank's
///    `lists` entry (so every bank sees its accesses in drain order), and
///    shared/global monitor records are replayed in drain order (monitor
///    state is disjoint from LLC state; per-monitor record order is what
///    matters, and it is preserved).
/// 3. **Bank shards (parallel over banks).** Each [`crate::llc::LlcShard`]
///    performs its bank's lookups-and-fills — the expensive hash/LRU state
///    transitions — emitting one outcome byte per access into `outs`. The
///    partition of work by bank is fixed by the routes, so the outcome
///    streams are identical for *any* worker count, including one.
/// 4. **Reduce (sequential, index-ordered).** The drain order is walked
///    once more; each access pops the next outcome byte off its bank's
///    queue and flows through [`Simulation::apply_access_result`] — the
///    same accumulation code, in the same order, with the same values as
///    the single-core batched engine. Every f64 addition happens here, so
///    results are bit-identical by construction.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Drain order: `(thread << 40) | acc-index` per access.
    order: Vec<u64>,
    /// Packed route per access, aligned with `AccessBatch::acc`.
    routes: Vec<u32>,
    /// Per-bank access lists (indices into `acc`), in drain order.
    lists: Vec<Vec<u32>>,
    /// Per-bank outcome queues, parallel to `lists`.
    outs: Vec<Vec<u8>>,
    /// Per-bank reduce cursors into `outs`.
    cursors: Vec<usize>,
}

/// Receiver for [`drain_round_robin`]: gets every access of an interval,
/// identified by `(thread, acc index)`, in the exact order the reference
/// engine would issue it.
trait DrainSink {
    /// One access inside a multi-thread segment.
    fn each(&mut self, ti: usize, c: usize);

    /// The final single-thread run `lo..hi` — an optimization seam (the
    /// batched engine tries its closed-form bypass fast path here); the
    /// default is the plain per-access walk.
    fn tail(&mut self, ti: usize, lo: usize, hi: usize) {
        for c in lo..hi {
            self.each(ti, c);
        }
    }
}

/// The segmented round-robin drain-order walker: between two thread
/// exhaustions the set of active threads is fixed, so whole rounds run
/// over the active list with no per-access budget checks, and the last
/// surviving thread's tail is handed over as one run. This is the *only*
/// implementation of the interval drain order — the batched engine
/// processes accesses as it walks, the sharded pipeline materializes the
/// walk into its plan — so the two engines cannot diverge on ordering.
fn drain_round_robin(
    offsets: &[usize],
    cursor: &mut Vec<usize>,
    active: &mut Vec<u32>,
    sink: &mut impl DrainSink,
) {
    let num_threads = offsets.len() - 1;
    cursor.clear();
    cursor.extend_from_slice(&offsets[..num_threads]);
    loop {
        // Segment setup: active threads (id order — the round-robin visit
        // order) and the shortest remaining budget among them.
        active.clear();
        let mut min_rem = usize::MAX;
        for ti in 0..num_threads {
            let rem = offsets[ti + 1] - cursor[ti];
            if rem > 0 {
                active.push(ti as u32);
                min_rem = min_rem.min(rem);
            }
        }
        match active.len() {
            0 => break,
            1 => {
                let ti = active[0] as usize;
                let (lo, hi) = (cursor[ti], offsets[ti + 1]);
                sink.tail(ti, lo, hi);
                cursor[ti] = hi;
                break;
            }
            _ => {
                for _ in 0..min_rem {
                    for &ti in active.iter() {
                        let ti = ti as usize;
                        let c = cursor[ti];
                        cursor[ti] = c + 1;
                        sink.each(ti, c);
                    }
                }
            }
        }
    }
}

/// The batched engine's drain: process each access immediately, with the
/// single-thread tail routed through the bypass-run fast path.
struct BatchedDrainSink<'a> {
    sim: &'a mut Simulation,
    acc: &'a [u64],
    hot: &'a HotState,
}

impl DrainSink for BatchedDrainSink<'_> {
    fn each(&mut self, ti: usize, c: usize) {
        let (vc, target, line) = unpack_access(self.acc[c]);
        self.sim.process_access(ti, vc, target, line, self.hot);
    }

    fn tail(&mut self, ti: usize, lo: usize, hi: usize) {
        if !self.sim.process_bypass_run(ti, &self.acc[lo..hi], self.hot) {
            for c in lo..hi {
                self.each(ti, c);
            }
        }
    }
}

/// The sharded pipeline's phase-2 planner: materialize the drain order,
/// partition non-bypass accesses by home bank, and replay shared/global
/// monitor records (monitor state is disjoint from LLC state, and
/// per-monitor record order — all that matters — is preserved).
struct PlanSink<'a> {
    acc: &'a [u64],
    routes: &'a [u32],
    order: &'a mut Vec<u64>,
    lists: &'a mut [Vec<u32>],
    monitors: &'a mut [AnyMonitor],
    monitors_on: bool,
}

impl DrainSink for PlanSink<'_> {
    fn each(&mut self, ti: usize, c: usize) {
        self.order.push(((ti as u64) << 40) | c as u64);
        let r = self.routes[c];
        if r & ROUTE_BYPASS == 0 {
            self.lists[(r & ROUTE_BANK_MASK) as usize].push(c as u32);
        }
        if self.monitors_on {
            let a = self.acc[c];
            if a & (ACC_SHARED | ACC_GLOBAL) != 0 {
                let line = a & ACC_LINE_MASK;
                self.monitors[(line >> 40) as usize].record(Line(line));
            }
        }
    }
}

/// One thread's slice of phase-1 work: its state, its private monitor (when
/// monitors are live), and its disjoint windows of the access and route
/// buffers.
struct GenTask<'a> {
    core: TileId,
    global_vc: u32,
    thread: &'a mut ThreadState,
    monitor: Option<&'a mut AnyMonitor>,
    acc: &'a mut [u64],
    routes: &'a mut [u32],
}

impl GenTask<'_> {
    fn run(&mut self, llc: &Llc, mesh: &cdcs_mesh::Mesh) {
        let t = &mut *self.thread;
        if t.source.is_private_only() {
            // Same bulk draw (and same epoch accounting) as the serial
            // generation loop.
            let base = (t.vc_private as u64) << 40;
            t.source.fill_private_offsets_slice(self.acc);
            for a in self.acc.iter_mut() {
                // Disjoint address spaces per VC.
                *a |= base;
            }
            t.ep_private += self.acc.len() as f64;
        } else {
            for slot in self.acc.iter_mut() {
                let (target, offset) = t.source.next_access();
                let (vc, class_bits) = match target {
                    StreamTarget::ThreadPrivate => {
                        t.ep_private += 1.0;
                        (t.vc_private, 0)
                    }
                    StreamTarget::ProcessShared => {
                        t.ep_shared += 1.0;
                        (
                            t.vc_shared.expect("shared access without shared VC"),
                            ACC_SHARED,
                        )
                    }
                    StreamTarget::Global => (self.global_vc, ACC_GLOBAL),
                };
                // Disjoint address spaces per VC.
                *slot = class_bits | ((vc as u64) << 40) | offset;
            }
        }
        // Private-monitor pre-pass: this thread's private VC only ever
        // receives accesses from this thread, in this order.
        if let Some(mon) = self.monitor.as_deref_mut() {
            for &a in self.acc.iter() {
                if a & (ACC_SHARED | ACC_GLOBAL) == 0 {
                    mon.record(Line(a & ACC_LINE_MASK));
                }
            }
        }
        // Route every access through the pure mapping lookup.
        for (slot, &a) in self.routes.iter_mut().zip(self.acc.iter()) {
            let (vc, target, line) = unpack_access(a);
            *slot = pack_route(llc.route(vc, target, self.core, mesh, line));
        }
    }
}

/// One bank's phase-3 work: its LLC shard, its access list, and its outcome
/// queue.
struct ShardTask<'a> {
    shard: crate::llc::LlcShard<'a>,
    list: &'a [u32],
    out: &'a mut Vec<u8>,
    acc: &'a [u64],
    routes: &'a [u32],
}

impl ShardTask<'_> {
    fn run(&mut self) {
        self.out.clear();
        for &idx in self.list {
            let a = self.acc[idx as usize];
            let line = a & ACC_LINE_MASK;
            let vc = (line >> 40) as u32;
            let check_old = self.routes[idx as usize] >> 16 != 0;
            self.out
                .push(self.shard.access_routed(vc, Line(line), check_old));
        }
    }
}

/// A concrete monitor, dispatched by match instead of vtable: the `record`
/// call sits on the per-access path of every partitioned-scheme simulation,
/// and the enum lets its sampling fast path inline into the engine.
#[derive(Debug, Clone)]
enum AnyMonitor {
    Gmon(Gmon),
    Umon(Umon),
}

impl AnyMonitor {
    #[inline]
    fn record(&mut self, line: Line) {
        match self {
            AnyMonitor::Gmon(m) => m.record(line),
            AnyMonitor::Umon(m) => m.record(line),
        }
    }

    fn miss_curve(&self) -> MissCurve {
        match self {
            AnyMonitor::Gmon(m) => m.miss_curve(),
            AnyMonitor::Umon(m) => m.miss_curve(),
        }
    }

    fn age(&mut self) {
        match self {
            AnyMonitor::Gmon(m) => m.age(),
            AnyMonitor::Umon(m) => m.age(),
        }
    }
}

/// Per-interval constants of the access path, read once from the config
/// instead of once per access.
struct HotState {
    /// Monitors exist and their samples can still be read (see
    /// `Simulation::monitors_live`).
    monitors_live: bool,
    bank_lat: f64,
    line_flits: u64,
    ctrl_flits: u64,
    /// Memory-controller port count (for the interleaved port pick).
    ports: u64,
    measuring: bool,
}

/// The next interleaved memory-controller port (batched path): the same
/// `access № mod port-count` sequence as `mc.port_for(mc_counter)`,
/// maintained as a wrapping cursor instead of a per-access division.
#[inline]
fn next_port(cursor: &mut u64, ports: u64) -> usize {
    let port = *cursor;
    *cursor += 1;
    if *cursor == ports {
        *cursor = 0;
    }
    port as usize
}

/// The simulator.
pub struct Simulation {
    config: SimConfig,
    threads: Vec<ThreadState>,
    vc_kinds: Vec<VcKind>,
    cores: Vec<TileId>,
    llc: Llc,
    memory: MemoryModel,
    monitors: Vec<AnyMonitor>,
    mc: MemCtrlPlacement,
    mc_counter: u64,
    /// Batched-path port cursor: equals `mc_counter % ports` without the
    /// per-access division (the reference path keeps the counter form).
    mc_port: u64,
    avg_mc_round_trip: f64,
    /// Precomputed `tile × tile` hop / round-trip tables (built once here,
    /// next to the memory-controller mean-hops table): the batched access
    /// path replaces `mesh.hops` + `noc.round_trip_latency` with two loads.
    tile_tables: DistanceTables,
    /// Precomputed `tile × mc-port` hop / round-trip tables for the miss and
    /// writeback paths.
    mc_tables: PortDistanceTables,
    /// Planner-facing parameters with the round-trip table prebuilt;
    /// `mem_latency` is patched per epoch in [`Self::planner_params`].
    base_params: SystemParams,
    /// Reusable planner buffers (cost matrix, spiral orders, …) shared
    /// across epoch reconfigurations.
    scratch: PlanScratch,
    /// Pooled planner output buffer: each reconfiguration plans into this
    /// and swaps it with `last_placement`, so steady-state epochs emit
    /// placements without allocating the `vc × bank` matrix.
    plan_buf: Placement,
    /// Reusable batched-interval buffers.
    batch: AccessBatch,
    /// Reusable bank-sharded pipeline buffers (`intra_cell_threads > 0`).
    shard: ShardScratch,
    /// Worker pool for the intra-cell fan-outs, pinned to
    /// `SimConfig::intra_cell_threads` workers so a simulation nested in
    /// `run_grid`'s outer pool uses exactly its configured share of cores.
    shard_pool: rayon::ThreadPool,
    /// One-worker pool for intervals below [`SHARD_SEQ_THRESHOLD`]: the
    /// same sharded pipeline, drained in-thread with zero spawns (worker
    /// count never changes results, only wall clock).
    shard_seq_pool: rayon::ThreadPool,
    /// `CDCS_DEBUG_RECONFIG` read once at construction (the lookup is a
    /// syscall; it has no place inside the reconfiguration path).
    debug_reconfig: bool,
    /// Whether monitor samples can still influence a decision. Monitor
    /// state is read in exactly one place — `build_problem` at a
    /// reconfiguration — so once the last reconfiguration of a run has
    /// happened (the final epoch, or the post-reconfiguration half of a
    /// trace), recording into the GMONs is dead work and is skipped.
    /// `SimResult` carries no monitor state, so results are identical.
    monitors_live: bool,
    cycle: u64,
    traffic: cdcs_mesh::TrafficStats,
    system: SystemMetrics,
    measuring: bool,
    ipc_trace: Vec<(u64, f64)>,
    pending_pause: u64,
    last_placement: Option<Placement>,
    /// Processes in the base mix; roster slots `>= base_processes` belong
    /// to scripted arrivals and start inactive (event engine only).
    base_processes: usize,
    /// The full roster mix, kept only when `trace_record` is set so
    /// [`Self::finish`] can write it into the trace index.
    record_mix: Option<WorkloadMix>,
}

impl Simulation {
    /// Builds a simulation of `mix` under `config`.
    ///
    /// # Errors
    ///
    /// Returns a message if the config is invalid or the mix has more
    /// threads than the chip has cores.
    pub fn new(config: SimConfig, mix: WorkloadMix) -> Result<Self, String> {
        config.validate()?;
        // Trace replay substitutes the recorded mix (and, below, the
        // recorded streams) for the cell's own.
        let replay = if config.trace_replay.is_empty() {
            None
        } else {
            Some(TraceSource::load(&config.trace_replay)?)
        };
        let mut mix = match &replay {
            Some(src) => src.mix().clone(),
            None => mix,
        };
        // Event engine: the roster is fixed at construction — scripted
        // arrivals occupy process slots after the base mix (in time order,
        // the order the engine activates them), so cores, VCs, and
        // monitors exist from cycle 0 and no mid-run re-layout is needed.
        let base_processes = mix.processes().len();
        if config.engine == EngineMode::Event {
            for e in config.events.sorted() {
                if let WorkloadEvent::Arrival { app } = &e.event {
                    let profile = cdcs_workload::spec::by_name(app)
                        .ok_or_else(|| format!("unknown arrival app {app}"))?;
                    mix.push_process(profile.clone());
                }
            }
            config.events.validate(mix.processes().len())?;
        }
        let total_threads = mix.total_threads();
        if total_threads > config.mesh.num_tiles() {
            return Err(format!(
                "{total_threads} threads exceed {} cores",
                config.mesh.num_tiles()
            ));
        }
        if total_threads == 0 {
            return Err("mix has no threads".into());
        }

        // VC layout: one private VC per thread (ids 0..T), one shared VC per
        // multi-threaded process, one global VC last. (Single-threaded
        // processes' per-process VCs are provably empty in our workload
        // model and are omitted; the paper's runtime would create them but
        // they hold no data in steady state.)
        let mut vc_kinds: Vec<VcKind> = Vec::new();
        let mut threads: Vec<ThreadState> = Vec::new();
        for (p, app) in mix.processes().iter().enumerate() {
            for tip in 0..app.threads {
                let global_tid = threads.len() as u32;
                vc_kinds.push(VcKind::thread_private(global_tid));
                let mut source = match &replay {
                    Some(src) => ThreadSource::replay(src.cursor(global_tid as usize)),
                    None => ThreadSource::synthetic(AccessStream::for_thread(
                        app,
                        tip,
                        mix.stream_seed(p, tip),
                    )),
                };
                if !config.trace_record.is_empty() {
                    source.enable_tap();
                }
                threads.push(ThreadState {
                    process: p,
                    apki: app.apki,
                    ipc0: app.ipc0,
                    mlp: app.mlp,
                    source,
                    vc_private: global_tid,
                    vc_shared: None, // patched below
                    ipc: app.ipc0 * 0.5,
                    carry: 0.0,
                    active: p < base_processes,
                    idle_until: 0,
                    rate_scale: 1.0,
                    iv_accesses: 0,
                    iv_latency: 0.0,
                    ep_private: 0.0,
                    ep_shared: 0.0,
                    metrics: ThreadMetrics {
                        app: app.name.clone(),
                        process: p,
                        thread: tip,
                        ..Default::default()
                    },
                });
            }
        }
        for (p, app) in mix.processes().iter().enumerate() {
            if app.shared_pattern.is_some() {
                let vc = vc_kinds.len() as u32;
                vc_kinds.push(VcKind::process_shared(p as u32));
                for t in threads.iter_mut().filter(|t| t.process == p) {
                    t.vc_shared = Some(vc);
                }
            }
        }
        vc_kinds.push(VcKind::Global);
        let num_vcs = vc_kinds.len();

        // Initial thread pinning.
        let sched = match config.scheme {
            Scheme::SNuca => ThreadSched::Random,
            Scheme::RNuca { sched } | Scheme::Jigsaw { sched } | Scheme::Cdcs { sched, .. } => {
                sched
            }
        };
        let cores = match sched {
            ThreadSched::Clustered => clustered_cores(total_threads, &config.mesh),
            ThreadSched::Random => random_cores(total_threads, &config.mesh, config.seed ^ 0x5eed),
        };

        let llc = match config.scheme {
            Scheme::SNuca => Llc::unpartitioned(config.num_banks(), config.bank_lines, None),
            Scheme::RNuca { .. } => Llc::unpartitioned(
                config.num_banks(),
                config.bank_lines,
                Some(RNucaPolicy::default()),
            ),
            Scheme::Jigsaw { .. } | Scheme::Cdcs { .. } => {
                Llc::partitioned(config.num_banks(), config.bank_lines, num_vcs)
            }
        };

        // Monitors: GMONs sized to cover the whole LLC (§IV-G), one per VC.
        // Every VC gets the same geometry, so the sizing computation (the
        // γ bisection for GMONs) runs once and the per-VC monitors are
        // stamped from the prototype.
        let monitors: Vec<AnyMonitor> = if config.scheme.partitioned() {
            let prototype = match config.monitor_kind {
                crate::config::MonitorKind::Gmon { ways } => {
                    AnyMonitor::Gmon(Gmon::new(GmonConfig::covering(
                        config.monitor_sets,
                        ways,
                        config.monitor_sample_period,
                        config.total_lines(),
                    )))
                }
                crate::config::MonitorKind::Umon { ways } => {
                    // Uniform ways sized to cover the LLC.
                    let per_way = config.total_lines().div_ceil(ways as u64);
                    let period = per_way.div_ceil(config.monitor_sets as u64).max(1) as u32;
                    AnyMonitor::Umon(Umon::new(UmonConfig {
                        sets: config.monitor_sets,
                        ways,
                        sample_period: period,
                    }))
                }
            };
            vec![prototype; num_vcs]
        } else {
            Vec::new()
        };

        let mc = MemCtrlPlacement::edges(&config.mesh, config.mem_controllers);
        let tiles = config.mesh.tiles();
        let avg_mc_hops: f64 = tiles
            .iter()
            .map(|&t| mc.mean_hops_from(&config.mesh, t))
            .sum::<f64>()
            / tiles.len() as f64;
        let avg_mc_round_trip =
            f64::from(config.noc.round_trip_latency(avg_mc_hops.round() as u32));

        let record_mix = if config.trace_record.is_empty() {
            None
        } else {
            Some(mix.clone())
        };
        let memory = MemoryModel::new(config.mem_zero_load, config.total_mem_bandwidth());
        let base_params = SystemParams::new(
            config.mesh,
            config.bank_lines,
            config.noc,
            config.mem_zero_load + avg_mc_round_trip,
            f64::from(config.bank_latency),
        );
        // Hop / round-trip tables for the batched access path, built once
        // alongside the mean-hops table above.
        let tile_tables = DistanceTables::new(&config.mesh, config.noc);
        let mc_tables = PortDistanceTables::new(&config.mesh, config.noc, mc.ports());
        // Pinned pools (just scoped worker counts in the vendored rayon)
        // for the sharded pipeline's fan-outs; unused when the knob is 0.
        let shard_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(config.intra_cell_threads.max(1))
            .build()
            .expect("shard pool");
        let shard_seq_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("shard seq pool");

        let mut sim = Simulation {
            config,
            threads,
            vc_kinds,
            cores,
            llc,
            memory,
            monitors,
            mc,
            mc_counter: 0,
            mc_port: 0,
            avg_mc_round_trip,
            tile_tables,
            mc_tables,
            base_params,
            scratch: PlanScratch::new(),
            plan_buf: Placement::default(),
            batch: AccessBatch::default(),
            shard: ShardScratch::default(),
            shard_pool,
            shard_seq_pool,
            debug_reconfig: std::env::var("CDCS_DEBUG_RECONFIG").is_ok(),
            monitors_live: true,
            cycle: 0,
            traffic: cdcs_mesh::TrafficStats::new(),
            system: SystemMetrics::default(),
            measuring: false,
            ipc_trace: Vec::new(),
            pending_pause: 0,
            last_placement: None,
            base_processes,
            record_mix,
        };
        if sim.config.scheme.partitioned() {
            sim.bootstrap_placement();
        }
        Ok(sim)
    }

    /// System parameters as seen by the planners. Only the memory latency
    /// changes between epochs (bandwidth feedback), so the precomputed
    /// round-trip table inside `base_params` is cloned rather than rebuilt.
    fn planner_params(&self) -> SystemParams {
        let mut params = self.base_params.clone();
        params.mem_latency = self.memory.current_latency() + self.avg_mc_round_trip;
        params
    }

    /// Epoch-0 placement before any curves exist: an equal split, greedily
    /// placed near each VC's accessors.
    fn bootstrap_placement(&mut self) {
        let problem = self.build_problem(true);
        let num_vcs = self.vc_kinds.len();
        let per_vc = (self.config.total_lines() / num_vcs as u64) / self.config.alloc_granularity
            * self.config.alloc_granularity;
        let sizes = vec![per_vc; num_vcs];
        let placement = cdcs_core::place::greedy_place_with(
            &problem,
            &sizes,
            &self.cores,
            self.config.alloc_granularity,
            &mut self.scratch,
        );
        self.llc
            .reconfigure(&placement, MoveScheme::Instant, self.cycle, 0);
        self.last_placement = Some(placement);
    }

    /// Builds the epoch's [`PlacementProblem`] from monitors and measured
    /// access rates. With `bootstrap`, uses flat unit curves and unit rates.
    fn build_problem(&self, bootstrap: bool) -> PlacementProblem {
        let vcs: Vec<VcInfo> = self
            .vc_kinds
            .iter()
            .enumerate()
            .map(|(d, &kind)| {
                let curve = if bootstrap {
                    MissCurve::flat(1.0)
                } else {
                    self.monitors[d].miss_curve()
                };
                VcInfo::new(d as u32, kind, curve)
            })
            .collect();
        let threads: Vec<ThreadInfo> = self
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut acc: Vec<(u32, f64)> = Vec::with_capacity(2);
                if bootstrap {
                    acc.push((t.vc_private, 1.0));
                    if let Some(s) = t.vc_shared {
                        acc.push((s, 1.0));
                    }
                } else {
                    if t.ep_private > 0.0 {
                        acc.push((t.vc_private, t.ep_private));
                    }
                    if let (Some(s), true) = (t.vc_shared, t.ep_shared > 0.0) {
                        acc.push((s, t.ep_shared));
                    }
                }
                ThreadInfo::new(i as u32, acc)
            })
            .collect();
        PlacementProblem::new(self.planner_params(), vcs, threads)
            .expect("engine builds a consistent problem")
    }

    /// Runs an epoch-boundary reconfiguration for partitioned schemes.
    ///
    /// The planner writes into the pooled `plan_buf`, which on application
    /// is swapped with `last_placement` — steady-state epochs neither
    /// allocate the output matrix nor clone it into `last_placement`.
    fn reconfigure(&mut self) {
        let problem = self.build_problem(false);
        let mut placement = std::mem::take(&mut self.plan_buf);
        match &self.config.scheme {
            Scheme::Jigsaw { .. } => JigsawPlanner {
                granularity: self.config.alloc_granularity,
                chunk: self.config.alloc_granularity,
            }
            .plan_into(&problem, &self.cores, &mut self.scratch, &mut placement),
            Scheme::Cdcs { planner, .. } => {
                let planner = CdcsPlanner {
                    granularity: self.config.alloc_granularity,
                    chunk: self.config.alloc_granularity,
                    ..*planner
                };
                if self.config.hier_region_side > 0 {
                    // Mega-mesh path: region-decomposed planning, with
                    // incremental warm starts off the applied placement when
                    // the threshold allows. CDCS-only — the Jigsaw variants
                    // model prior work and always plan flat.
                    let hier = HierarchicalPlanner {
                        inner: planner,
                        region_side: self.config.hier_region_side,
                        change_threshold: self.config.hier_change_threshold,
                    };
                    hier.plan_into(
                        &problem,
                        self.last_placement.as_ref(),
                        &self.cores,
                        &mut self.scratch,
                        &mut placement,
                    );
                } else {
                    planner.plan_into(&problem, &self.cores, &mut self.scratch, &mut placement);
                }
            }
            _ => unreachable!("only partitioned schemes reconfigure"),
        };
        debug_assert!(placement.check_feasible(&problem).is_ok());
        // Cost-benefit gate: apply the new placement only if its predicted
        // latency gain (per epoch, from the measured curves) exceeds the
        // refill cost of the lines it displaces. Growth costs nothing (new
        // lines fill on demand either way); shrink/rearrangement does.
        if let (Some(last), true) = (
            &self.last_placement,
            self.config.reconfig_benefit_factor > 0.0,
        ) {
            // Displaced lines: per-bank capacity shrink, scaled by how full
            // the VC actually is (shrinking empty capacity displaces
            // nothing).
            let relocated: f64 = (0..placement.num_vcs())
                .map(|d| {
                    let shrink: u64 = placement
                        .vc_row(d)
                        .iter()
                        .zip(last.vc_row(d))
                        .map(|(&lines, &old_lines)| old_lines.saturating_sub(lines))
                        .sum();
                    let old_total: u64 = last.vc_row(d).iter().sum();
                    if old_total == 0 {
                        return 0.0;
                    }
                    let occupancy = self.llc.vc_occupancy(d as u32) as f64 / old_total as f64;
                    shrink as f64 * occupancy.min(1.0)
                })
                .sum();
            let new_cost = cdcs_core::cost::total_latency(&problem, &placement);
            // The current placement costed under the current cores (which
            // are where its threads actually run).
            let old_cost = cdcs_core::cost::total_latency_with_cores(&problem, last, &self.cores);
            let move_cost =
                self.config.reconfig_benefit_factor * relocated * problem.params.mem_latency;
            if new_cost + move_cost >= old_cost {
                // Not worth it: keep the current placement and return the
                // buffer to the pool.
                self.plan_buf = placement;
                for m in &mut self.monitors {
                    m.age();
                }
                for t in &mut self.threads {
                    t.ep_private = 0.0;
                    t.ep_shared = 0.0;
                }
                return;
            }
        }
        if self.debug_reconfig {
            eprintln!(
                "reconfig@{}: cores[0..4] {:?} vc0 {:?} vc1 {:?}",
                self.cycle,
                &placement.thread_cores[..4.min(placement.thread_cores.len())],
                placement.vc_banks(0),
                placement.vc_banks(1),
            );
        }
        self.cores.clear();
        self.cores.extend_from_slice(&placement.thread_cores);
        let pause = self.llc.reconfigure(
            &placement,
            self.config.move_scheme,
            self.cycle,
            self.config.bulk_pause_cycles,
        );
        self.pending_pause += pause;
        for m in &mut self.monitors {
            m.age();
        }
        for t in &mut self.threads {
            t.ep_private = 0.0;
            t.ep_shared = 0.0;
        }
        if self.measuring {
            self.system.reconfigurations += 1;
            self.system.pause_cycles += pause;
        }
        // The displaced previous placement becomes the next epoch's pooled
        // plan buffer.
        if let Some(old) = self.last_placement.replace(placement) {
            self.plan_buf = old;
        }
    }

    /// Issues one access for thread `ti`; returns its latency in cycles.
    ///
    /// This is the *reference* access path (`SimConfig::reference_engine`):
    /// it draws the access from the stream and resolves every distance
    /// through `mesh.hops` / `noc.round_trip_latency` inline. The batched
    /// path ([`Self::process_access`]) must produce bit-identical results —
    /// `crates/sim/tests/engine_equivalence.rs` holds the two against each
    /// other.
    fn issue_access(&mut self, ti: usize) -> f64 {
        let core = self.cores[ti];
        let (target, offset) = self.threads[ti].source.next_access();
        let vc = match target {
            StreamTarget::ThreadPrivate => {
                self.threads[ti].ep_private += 1.0;
                self.threads[ti].vc_private
            }
            StreamTarget::ProcessShared => {
                self.threads[ti].ep_shared += 1.0;
                self.threads[ti]
                    .vc_shared
                    .expect("shared access without shared VC")
            }
            StreamTarget::Global => (self.vc_kinds.len() - 1) as u32,
        };
        // Disjoint address spaces per VC.
        let line = Line(((vc as u64) << 40) | offset);

        if !self.monitors.is_empty() && self.monitors_live {
            self.monitors[vc as usize].record(line);
        }

        let result = self.llc.access(vc, target, core, &self.config.mesh, line);
        let noc = &self.config.noc;
        let mesh = &self.config.mesh;
        let bank_lat = f64::from(self.config.bank_latency);
        let line_flits = noc.data_flits(64);
        let ctrl_flits = noc.control_flits();
        let mut latency = 0.0;
        let m = &mut self.threads[ti].metrics;
        m.accesses += 1;

        if result.bypass {
            // Zero-allocation VC: straight to memory from the core tile.
            let port = self.mc.port_for(self.mc_counter);
            self.mc_counter += 1;
            let hops = mesh.hops(core, port);
            let mem = self.memory.access() + f64::from(noc.round_trip_latency(hops));
            latency += mem;
            m.mem_cycles += mem;
            m.misses += 1;
            self.traffic
                .record(TrafficClass::LlcToMem, ctrl_flits, hops);
            self.traffic
                .record(TrafficClass::LlcToMem, line_flits, hops);
            if self.measuring {
                self.system.dram_accesses += 1;
            }
            self.threads[ti].iv_accesses += 1;
            self.threads[ti].iv_latency += latency;
            return latency;
        }

        let bank_tile = TileId(result.bank.0);
        let hops = mesh.hops(core, bank_tile);
        let to_bank = f64::from(noc.round_trip_latency(hops));
        latency += bank_lat + to_bank;
        m.bank_cycles += bank_lat;
        m.net_cycles += to_bank;
        self.traffic.record(TrafficClass::L2ToLlc, ctrl_flits, hops);
        self.traffic.record(TrafficClass::L2ToLlc, line_flits, hops);

        // Two-level lookup during the shadow window (Fig. 10): the new bank
        // forwards to the old bank.
        if let Some(old) = result.old_bank_checked {
            let old_tile = TileId(old.0);
            let detour_hops = mesh.hops(bank_tile, old_tile);
            let detour = bank_lat + f64::from(noc.round_trip_latency(detour_hops));
            latency += detour;
            m.bank_cycles += bank_lat;
            m.net_cycles += f64::from(noc.round_trip_latency(detour_hops));
            self.traffic
                .record(TrafficClass::Other, ctrl_flits, detour_hops);
            if result.demand_moved {
                // The line and its coherence state travel back (Fig. 10a).
                self.traffic
                    .record(TrafficClass::Other, line_flits, detour_hops);
                if self.measuring {
                    self.system.demand_moves += 1;
                }
            }
        }

        if result.hit {
            m.hits += 1;
        } else {
            let port = self.mc.port_for(self.mc_counter);
            self.mc_counter += 1;
            let mem_hops = mesh.hops(bank_tile, port);
            let mem = self.memory.access() + f64::from(noc.round_trip_latency(mem_hops));
            latency += mem;
            m.mem_cycles += mem;
            m.misses += 1;
            self.traffic
                .record(TrafficClass::LlcToMem, ctrl_flits, mem_hops);
            self.traffic
                .record(TrafficClass::LlcToMem, line_flits, mem_hops);
            if self.measuring {
                self.system.dram_accesses += 1;
            }
        }
        if result.evicted {
            // Writeback to the line's controller (no silent drops, Table 2).
            let port = self.mc.port_for(self.mc_counter);
            self.mc_counter += 1;
            let wb_hops = mesh.hops(bank_tile, port);
            self.traffic
                .record(TrafficClass::LlcToMem, line_flits, wb_hops);
            if self.measuring {
                self.system.dram_accesses += 1;
            }
        }

        self.threads[ti].iv_accesses += 1;
        self.threads[ti].iv_latency += latency;
        latency
    }

    /// Fast path for a straight run of one thread's accesses that all hit a
    /// zero-allocation (bypassing) private VC — the back half of every
    /// interval once only a streaming thread has budget left. Processes the
    /// whole run with the per-access constants hoisted (descriptor check,
    /// memory-latency estimate, distance-table rows) and the order-invariant
    /// integer counters accumulated in batch; every floating-point
    /// accumulation happens access by access in the exact order
    /// [`Self::process_access`] performs it, so results stay bit-identical.
    ///
    /// Returns false (having done nothing) if the run does not qualify.
    fn process_bypass_run(&mut self, ti: usize, run: &[u64], hot: &HotState) -> bool {
        if run.is_empty() {
            return false;
        }
        // Qualify: every access targets the thread's private VC…
        if !run.iter().all(|&acc| acc & (ACC_SHARED | ACC_GLOBAL) == 0) {
            return false;
        }
        let vc = self.threads[ti].vc_private;
        // …and that VC currently bypasses the LLC.
        if !self.llc.vc_bypasses(vc) {
            return false;
        }

        // No monitor records here: these are thread-private accesses, which
        // the generation-side pre-pass already recorded.

        let core = self.cores[ti];
        let latency_estimate = self.memory.current_latency();
        let ports = hot.ports as usize;
        let k = run.len() as u64;
        let mut hop_sum = 0u64;
        let mut iv_latency = self.threads[ti].iv_latency;
        let m = &mut self.threads[ti].metrics;
        for _ in 0..run.len() {
            let port = next_port(&mut self.mc_port, hot.ports);
            debug_assert!(port < ports);
            // Same per-access f64 sequence as `process_access`'s bypass arm:
            // mem = memory latency + round trip; mem_cycles += mem;
            // iv_latency += mem.
            let mem = latency_estimate + self.mc_tables.round_trip(core, port);
            m.mem_cycles += mem;
            iv_latency += mem;
            hop_sum += u64::from(self.mc_tables.hops(core, port));
        }
        self.threads[ti].iv_latency = iv_latency;
        // Order-invariant integer bookkeeping, batched: exactly what k
        // per-access updates would produce (u64 addition is associative).
        let m = &mut self.threads[ti].metrics;
        m.accesses += k;
        m.misses += k;
        self.threads[ti].iv_accesses += k;
        self.memory.count_accesses(k);
        self.traffic.record_bulk(
            TrafficClass::LlcToMem,
            (hot.ctrl_flits + hot.line_flits) * hop_sum,
            2 * k,
        );
        if hot.measuring {
            self.system.dram_accesses += k;
        }
        true
    }

    /// Processes one pre-generated access on the batched path. Mirrors
    /// [`Self::issue_access`] step for step, but the stream draw and VC
    /// resolution already happened at batch-generation time and every
    /// distance is a table load ([`DistanceTables`] / [`PortDistanceTables`]
    /// hold exactly the values the reference path computes).
    fn process_access(
        &mut self,
        ti: usize,
        vc: u32,
        target: StreamTarget,
        line: Line,
        hot: &HotState,
    ) {
        // Thread-private records already happened in the generation-side
        // pre-pass; only the cross-thread (shared/global) VCs record here.
        if hot.monitors_live && target != StreamTarget::ThreadPrivate {
            self.monitors[vc as usize].record(line);
        }

        let core = self.cores[ti];
        let result = self.llc.access(vc, target, core, &self.config.mesh, line);
        self.apply_access_result(ti, result, hot);
    }

    /// Applies one resolved LLC lookup to every accumulator: latency,
    /// per-thread metrics, traffic, memory-controller interleave, system
    /// counters. This is the *only* place the batched engine adds f64s per
    /// access, and the sharded pipeline's reduction calls it in the exact
    /// drain order the serial path does — which is what makes the sharded
    /// results bit-identical regardless of worker count.
    fn apply_access_result(&mut self, ti: usize, result: LookupResult, hot: &HotState) {
        let core = self.cores[ti];
        let mut latency = 0.0;
        let m = &mut self.threads[ti].metrics;
        m.accesses += 1;

        if result.bypass {
            // Zero-allocation VC: straight to memory from the core tile.
            let port = next_port(&mut self.mc_port, hot.ports);
            let hops = self.mc_tables.hops(core, port);
            let mem = self.memory.access() + self.mc_tables.round_trip(core, port);
            latency += mem;
            m.mem_cycles += mem;
            m.misses += 1;
            self.traffic
                .record_pair(TrafficClass::LlcToMem, hot.ctrl_flits, hot.line_flits, hops);
            if hot.measuring {
                self.system.dram_accesses += 1;
            }
            self.threads[ti].iv_accesses += 1;
            self.threads[ti].iv_latency += latency;
            return;
        }

        let bank_tile = TileId(result.bank.0);
        let hops = self.tile_tables.hops(core, bank_tile);
        let to_bank = self.tile_tables.round_trip(core, bank_tile);
        latency += hot.bank_lat + to_bank;
        m.bank_cycles += hot.bank_lat;
        m.net_cycles += to_bank;
        self.traffic
            .record_pair(TrafficClass::L2ToLlc, hot.ctrl_flits, hot.line_flits, hops);

        // Two-level lookup during the shadow window (Fig. 10): the new bank
        // forwards to the old bank.
        if let Some(old) = result.old_bank_checked {
            let old_tile = TileId(old.0);
            let detour_hops = self.tile_tables.hops(bank_tile, old_tile);
            let detour_rt = self.tile_tables.round_trip(bank_tile, old_tile);
            latency += hot.bank_lat + detour_rt;
            m.bank_cycles += hot.bank_lat;
            m.net_cycles += detour_rt;
            self.traffic
                .record(TrafficClass::Other, hot.ctrl_flits, detour_hops);
            if result.demand_moved {
                // The line and its coherence state travel back (Fig. 10a).
                self.traffic
                    .record(TrafficClass::Other, hot.line_flits, detour_hops);
                if hot.measuring {
                    self.system.demand_moves += 1;
                }
            }
        }

        if result.hit {
            m.hits += 1;
        } else {
            let port = next_port(&mut self.mc_port, hot.ports);
            let mem_hops = self.mc_tables.hops(bank_tile, port);
            let mem = self.memory.access() + self.mc_tables.round_trip(bank_tile, port);
            latency += mem;
            m.mem_cycles += mem;
            m.misses += 1;
            self.traffic.record_pair(
                TrafficClass::LlcToMem,
                hot.ctrl_flits,
                hot.line_flits,
                mem_hops,
            );
            if hot.measuring {
                self.system.dram_accesses += 1;
            }
        }
        if result.evicted {
            // Writeback to the line's controller (no silent drops, Table 2).
            let port = next_port(&mut self.mc_port, hot.ports);
            let wb_hops = self.mc_tables.hops(bank_tile, port);
            self.traffic
                .record(TrafficClass::LlcToMem, hot.line_flits, wb_hops);
            if hot.measuring {
                self.system.dram_accesses += 1;
            }
        }

        self.threads[ti].iv_accesses += 1;
        self.threads[ti].iv_latency += latency;
    }

    /// Batched interval core: generate every thread's accesses up front
    /// (stream draws, VC resolution, epoch accounting, line construction)
    /// into the reusable [`AccessBatch`], then drain them in round-robin
    /// order through the table-driven [`Self::process_access`].
    ///
    /// Per-thread streams are independent RNGs and the shared structures
    /// (LLC, monitors, memory model, controller interleave) are only touched
    /// in the drain, so splitting generation from processing preserves the
    /// reference path's access-for-access behaviour exactly.
    fn run_interval_batched(&mut self, batch: &mut AccessBatch) {
        let num_threads = self.threads.len();
        let global_vc = (self.vc_kinds.len() - 1) as u32;
        batch.acc.clear();
        batch.offsets.clear();
        batch.offsets.push(0);
        for (ti, t) in self.threads.iter_mut().enumerate() {
            let budget = batch.budgets[ti] as usize;
            if t.source.is_private_only() {
                // Single-class stream: bulk-draw the offsets (pattern
                // dispatch hoisted) and pack them against the constant
                // private-VC tag. Identical draws, identical epoch counts
                // (`budget` unit additions of an exact integer).
                let base = (t.vc_private as u64) << 40;
                let start = batch.acc.len();
                t.source.fill_private_offsets(budget, &mut batch.acc);
                for acc in &mut batch.acc[start..] {
                    // Disjoint address spaces per VC.
                    *acc |= base;
                }
                t.ep_private += budget as f64;
            } else {
                for _ in 0..budget {
                    let (target, offset) = t.source.next_access();
                    let (vc, class_bits) = match target {
                        StreamTarget::ThreadPrivate => {
                            t.ep_private += 1.0;
                            (t.vc_private, 0)
                        }
                        StreamTarget::ProcessShared => {
                            t.ep_shared += 1.0;
                            (
                                t.vc_shared.expect("shared access without shared VC"),
                                ACC_SHARED,
                            )
                        }
                        StreamTarget::Global => (global_vc, ACC_GLOBAL),
                    };
                    // Disjoint address spaces per VC.
                    batch.acc.push(class_bits | ((vc as u64) << 40) | offset);
                }
            }
            batch.offsets.push(batch.acc.len());
        }

        // Monitor pre-pass: a thread-private VC only ever receives accesses
        // from its one owning thread, so its round-robin record subsequence
        // *is* the thread's own slice, in order — record those in one tight
        // loop per thread while the monitor's tag array stays hot. Monitor
        // and LLC state are disjoint, so moving the records ahead of the
        // latency drain changes nothing. Shared/global VCs interleave
        // across threads and keep their records in the drain below.
        if !self.monitors.is_empty() && self.monitors_live {
            for ti in 0..num_threads {
                let monitor = &mut self.monitors[self.threads[ti].vc_private as usize];
                for &acc in &batch.acc[batch.offsets[ti]..batch.offsets[ti + 1]] {
                    if acc & (ACC_SHARED | ACC_GLOBAL) == 0 {
                        monitor.record(Line(acc & ACC_LINE_MASK));
                    }
                }
            }
        }

        let hot = self.interval_hot_state();

        // Round-robin drain, same interleave as the reference path: the
        // batched engine processes each access as the shared walker
        // ([`drain_round_robin`]) emits it, with the single-thread tail
        // routed through the closed-form bypass fast path first.
        {
            let AccessBatch {
                acc,
                offsets,
                cursor,
                active,
                ..
            } = &mut *batch;
            let mut sink = BatchedDrainSink {
                sim: self,
                acc,
                hot: &hot,
            };
            drain_round_robin(offsets, cursor, active, &mut sink);
        }
    }

    /// The per-interval hot constants, read once per interval. The single
    /// construction site for [`HotState`] — the batched drain and the
    /// sharded reduction both call this, so their per-access constants
    /// cannot drift apart.
    fn interval_hot_state(&self) -> HotState {
        HotState {
            monitors_live: !self.monitors.is_empty() && self.monitors_live,
            bank_lat: f64::from(self.config.bank_latency),
            line_flits: self.config.noc.data_flits(64),
            ctrl_flits: self.config.noc.control_flits(),
            ports: self.mc_tables.num_ports() as u64,
            measuring: self.measuring,
        }
    }

    /// Bank-sharded interval core (see [`ShardScratch`] for the four-phase
    /// pipeline). Must produce results bit-identical to
    /// [`Self::run_interval_batched`] for every worker count —
    /// `crates/sim/tests/engine_equivalence.rs` holds them together across
    /// schemes, mixes, entry points and 1/2/4 shard threads.
    fn run_interval_sharded(&mut self, batch: &mut AccessBatch, sh: &mut ShardScratch) {
        let num_threads = self.threads.len();
        let global_vc = (self.vc_kinds.len() - 1) as u32;
        let num_banks = self.config.num_banks();

        // Every budgeted draw yields exactly one access, so the per-thread
        // windows of the flat buffers are known before generation runs.
        batch.offsets.clear();
        batch.offsets.push(0);
        let mut total = 0usize;
        for &b in &batch.budgets {
            total += b as usize;
            batch.offsets.push(total);
        }
        batch.acc.clear();
        batch.acc.resize(total, 0);
        sh.routes.clear();
        sh.routes.resize(total, 0);

        let monitors_on = !self.monitors.is_empty() && self.monitors_live;

        // Below the threshold an interval cannot amortize thread spawns
        // (the vendored rayon scopes fresh workers per fan-out, ~tens of
        // µs each), so it drains the very same pipeline on one in-thread
        // worker. Pure wall-clock policy — worker count never changes
        // results.
        let pool = if total >= SHARD_SEQ_THRESHOLD {
            &self.shard_pool
        } else {
            &self.shard_seq_pool
        };

        // Phase 1 (parallel over threads): generate, record private
        // monitors, route.
        {
            let llc = &self.llc;
            let mesh = &self.config.mesh;
            let mut tasks: Vec<GenTask<'_>> = Vec::with_capacity(num_threads);
            {
                let mut acc_rest: &mut [u64] = &mut batch.acc;
                let mut routes_rest: &mut [u32] = &mut sh.routes;
                // Private VC ids equal thread ids (the engine numbers them
                // 0..T in construction order), so the first `num_threads`
                // monitors are exactly the private ones, in thread order.
                let mut mons: Vec<Option<&mut AnyMonitor>> = if monitors_on {
                    self.monitors[..num_threads].iter_mut().map(Some).collect()
                } else {
                    (0..num_threads).map(|_| None).collect()
                };
                let mut mon_iter = mons.drain(..);
                for (ti, thread) in self.threads.iter_mut().enumerate() {
                    let n = batch.offsets[ti + 1] - batch.offsets[ti];
                    let (acc, rest) = acc_rest.split_at_mut(n);
                    acc_rest = rest;
                    let (routes, rest) = routes_rest.split_at_mut(n);
                    routes_rest = rest;
                    tasks.push(GenTask {
                        core: self.cores[ti],
                        global_vc,
                        thread,
                        monitor: mon_iter.next().expect("one slot per thread"),
                        acc,
                        routes,
                    });
                }
            }
            pool.install(|| tasks.par_iter_mut().for_each(|task| task.run(llc, mesh)));
        }

        // Phase 2 (sequential): materialize the round-robin drain order,
        // partition it by home bank, and replay shared/global monitor
        // records in drain order.
        sh.order.clear();
        if sh.lists.len() != num_banks {
            sh.lists.resize_with(num_banks, Vec::new);
            sh.outs.resize_with(num_banks, Vec::new);
        }
        for l in &mut sh.lists {
            l.clear();
        }
        {
            let AccessBatch {
                acc,
                offsets,
                cursor,
                active,
                ..
            } = &mut *batch;
            let mut sink = PlanSink {
                acc,
                routes: &sh.routes,
                order: &mut sh.order,
                lists: &mut sh.lists,
                monitors: &mut self.monitors,
                monitors_on,
            };
            drain_round_robin(offsets, cursor, active, &mut sink);
        }

        // Phase 3 (parallel over banks): the stateful lookups. Work is
        // partitioned by home bank regardless of worker count, so the
        // outcome queues are identical on 1 worker and on N.
        let demand_total: u64;
        {
            let acc: &[u64] = &batch.acc;
            let routes: &[u32] = &sh.routes;
            let shards = self.llc.bank_shards();
            debug_assert_eq!(shards.len(), num_banks);
            let mut tasks: Vec<ShardTask<'_>> = shards
                .into_iter()
                .zip(sh.lists.iter())
                .zip(sh.outs.iter_mut())
                .map(|((shard, list), out)| ShardTask {
                    shard,
                    list,
                    out,
                    acc,
                    routes,
                })
                .collect();
            pool.install(|| tasks.par_iter_mut().for_each(|task| task.run()));
            // Fixed, bank-ordered merge of the integer partial sums.
            demand_total = tasks.iter().map(|t| t.shard.demand_moves).sum();
        }
        self.llc.add_demand_moves(demand_total);

        // Phase 4 (sequential reduce): replay the drain order through the
        // shared accumulation code, consuming each bank's outcome queue.
        let hot = self.interval_hot_state();
        sh.cursors.clear();
        sh.cursors.resize(num_banks, 0);
        const IDX_MASK: u64 = (1 << 40) - 1;
        for &packed in &sh.order {
            let ti = (packed >> 40) as usize;
            let idx = (packed & IDX_MASK) as usize;
            let route = unpack_route(sh.routes[idx]);
            let result = if route.bypass {
                lookup_result(route, 0)
            } else {
                let b = route.bank.index();
                let out = sh.outs[b][sh.cursors[b]];
                sh.cursors[b] += 1;
                lookup_result(route, out)
            };
            self.apply_access_result(ti, result, &hot);
        }
        debug_assert!(sh.cursors.iter().zip(&sh.outs).all(|(&c, o)| c == o.len()));
    }

    /// Simulates one interval; returns the aggregate instructions retired.
    fn run_interval(&mut self) -> f64 {
        let interval = self.config.interval_cycles;
        let cycle_now = self.cycle;
        let mut batch = std::mem::take(&mut self.batch);
        // Budgets from current IPC estimates.
        batch.budgets.clear();
        let mut instr_total = 0.0;
        for t in &mut self.threads {
            // Event-engine gates. Outside the event engine `active` is
            // always true, `idle_until` 0, and `rate_scale` 1.0, so the
            // steady path below computes bit-identical budgets (IEEE
            // `x * 1.0 == x` bitwise for finite x).
            if !t.active {
                // Not yet arrived, or departed: the core is off — no
                // cycles, no instructions, no accesses.
                batch.budgets.push(0);
                continue;
            }
            if cycle_now < t.idle_until {
                // Idle gap: cycles pass, instructions don't.
                batch.budgets.push(0);
                if self.measuring {
                    t.metrics.cycles += interval as f64;
                }
                continue;
            }
            let instrs = t.ipc * interval as f64;
            let exact = instrs * (t.apki * t.rate_scale) / 1000.0 + t.carry;
            let n = exact.floor();
            t.carry = exact - n;
            batch.budgets.push(n as u64);
            instr_total += instrs;
            if self.measuring {
                t.metrics.instructions += instrs;
                t.metrics.cycles += interval as f64;
            }
        }
        if self.config.reference_engine {
            // Reference path: one access at a time, round-robin.
            loop {
                let mut any = false;
                for ti in 0..batch.budgets.len() {
                    if batch.budgets[ti] > 0 {
                        batch.budgets[ti] -= 1;
                        self.issue_access(ti);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
        } else if self.config.intra_cell_threads > 0 {
            let mut sh = std::mem::take(&mut self.shard);
            self.run_interval_sharded(&mut batch, &mut sh);
            self.shard = sh;
        } else {
            self.run_interval_batched(&mut batch);
        }
        self.batch = batch;
        // Interval bookkeeping: AMAT -> IPC feedback.
        for t in &mut self.threads {
            if t.iv_accesses > 0 {
                let amat = t.iv_latency / t.iv_accesses as f64;
                let target = 1.0 / (1.0 / t.ipc0 + (t.apki * t.rate_scale) / 1000.0 * amat / t.mlp);
                t.ipc = 0.5 * t.ipc + 0.5 * target;
            }
            t.iv_accesses = 0;
            t.iv_latency = 0.0;
        }
        self.memory.end_interval(interval);
        self.cycle += interval;
        self.llc.background_tick(
            self.cycle,
            self.config.background_delay_cycles,
            self.config.background_walk_cycles,
        );

        // Reconfiguration pauses stall every core for their duration.
        if self.pending_pause > 0 {
            let pause = self.pending_pause;
            self.pending_pause = 0;
            self.cycle += pause;
            for t in &mut self.threads {
                if self.measuring && t.active {
                    t.metrics.cycles += pause as f64;
                }
            }
            if self.measuring {
                self.ipc_trace.push((self.cycle, 0.0));
            }
        }
        if self.measuring {
            self.ipc_trace
                .push((self.cycle, instr_total / interval as f64));
        }
        instr_total
    }

    /// Runs the configured warm-up and measurement epochs and returns the
    /// results.
    ///
    /// With `SimConfig::engine = Event` this dispatches to the event-driven
    /// loop ([`Self::run_event`]); the batched loop below stays the
    /// steady-state fast path.
    pub fn run(mut self) -> SimResult {
        if self.config.engine == EngineMode::Event {
            return self.run_event();
        }
        let intervals_per_epoch = (self.config.epoch_cycles / self.config.interval_cycles).max(1);
        let total_epochs = self.config.warmup_epochs + self.config.measure_epochs;
        for epoch in 0..total_epochs {
            self.measuring = epoch >= self.config.warmup_epochs;
            // The final epoch is followed by no reconfiguration, so nothing
            // can ever read the samples it would record.
            self.monitors_live = epoch + 1 < total_epochs;
            for _ in 0..intervals_per_epoch {
                self.run_interval();
            }
            if self.config.scheme.reconfigures() && epoch + 1 < total_epochs {
                self.reconfigure();
            }
        }
        self.finish()
    }

    /// The event-driven engine: the batched epoch/interval loop with a
    /// script consumed at interval granularity.
    ///
    /// Before each interval, due events mutate thread state — phase
    /// changes scale APKI, bursts set `rate_scale` (restored when the
    /// burst's duration elapses), idle gaps set `idle_until`, arrivals and
    /// departures flip `active`. A membership change (arrival/departure)
    /// immediately rebuilds placement through the existing reconfiguration
    /// path, so the planner sees the new roster without bespoke machinery.
    ///
    /// With an empty script every gate is a no-op and the loop performs
    /// the exact operation sequence of [`Self::run`] — pinned bit-identical
    /// by `crates/sim/tests/events.rs`.
    fn run_event(mut self) -> SimResult {
        let script: Vec<TimedEvent> = self.config.events.sorted();
        // Sorted-script index -> roster process id for arrivals; slots
        // after the base mix were appended in this same time order by
        // `Simulation::new`.
        let mut arrival_process = Vec::with_capacity(script.len());
        let mut next_arrival = self.base_processes;
        for e in &script {
            if matches!(e.event, WorkloadEvent::Arrival { .. }) {
                arrival_process.push(next_arrival);
                next_arrival += 1;
            } else {
                arrival_process.push(usize::MAX);
            }
        }
        let mut cursor = 0usize;
        // Open bursts as (end_cycle, process); expiry restores steady rate.
        let mut burst_ends: Vec<(u64, usize)> = Vec::new();

        let intervals_per_epoch = (self.config.epoch_cycles / self.config.interval_cycles).max(1);
        let total_epochs = self.config.warmup_epochs + self.config.measure_epochs;
        for epoch in 0..total_epochs {
            self.measuring = epoch >= self.config.warmup_epochs;
            // Monitors must also stay live while a future membership event
            // can still trigger a mid-epoch reconfiguration that reads them.
            let membership_ahead = script[cursor..].iter().any(|e| {
                matches!(
                    e.event,
                    WorkloadEvent::Arrival { .. } | WorkloadEvent::Departure { .. }
                )
            });
            self.monitors_live = epoch + 1 < total_epochs || membership_ahead;
            for _ in 0..intervals_per_epoch {
                let mut membership_changed = false;
                // Burst expiries first: a burst scheduled to end at or
                // before this interval's start is over before any event due
                // now is applied (so a new burst on the same process wins).
                burst_ends.retain(|&(end, p)| {
                    if end <= self.cycle {
                        for t in self.threads.iter_mut().filter(|t| t.process == p) {
                            t.rate_scale = 1.0;
                        }
                        false
                    } else {
                        true
                    }
                });
                while cursor < script.len() && script[cursor].at_cycle <= self.cycle {
                    let target = arrival_process[cursor];
                    match &script[cursor].event {
                        WorkloadEvent::PhaseChange {
                            process,
                            apki_scale,
                        } => {
                            for t in self.threads.iter_mut().filter(|t| t.process == *process) {
                                t.apki *= apki_scale;
                            }
                        }
                        WorkloadEvent::RateBurst {
                            process,
                            scale,
                            duration,
                        } => {
                            for t in self.threads.iter_mut().filter(|t| t.process == *process) {
                                t.rate_scale = *scale;
                            }
                            burst_ends.push((self.cycle + duration, *process));
                        }
                        WorkloadEvent::IdleGap { process, duration } => {
                            let until = self.cycle + duration;
                            for t in self.threads.iter_mut().filter(|t| t.process == *process) {
                                t.idle_until = until;
                            }
                        }
                        WorkloadEvent::Arrival { .. } => {
                            for t in self.threads.iter_mut().filter(|t| t.process == target) {
                                t.active = true;
                            }
                            membership_changed = true;
                        }
                        WorkloadEvent::Departure { process } => {
                            for t in self.threads.iter_mut().filter(|t| t.process == *process) {
                                t.active = false;
                            }
                            membership_changed = true;
                        }
                    }
                    cursor += 1;
                }
                if membership_changed && self.config.scheme.reconfigures() {
                    // Rebuild monitor/planner state for the new roster
                    // through the ordinary epoch-boundary path.
                    self.reconfigure();
                }
                self.run_interval();
            }
            if self.config.scheme.reconfigures() && epoch + 1 < total_epochs {
                self.reconfigure();
            }
        }
        self.finish()
    }

    /// Runs a fixed number of intervals without epoch logic (used by tests
    /// and the Fig. 17 harness via [`Simulation::run_trace`]).
    ///
    /// The measured window splits around its single reconfiguration as
    /// `floor(post_intervals / 2)` intervals before the boundary and
    /// `ceil(post_intervals / 2)` after — deliberate rounding: for odd
    /// counts the extra interval lands *after* the reconfiguration, so the
    /// recovery transient (the thing Fig. 17 plots — how fast each
    /// line-movement scheme restores IPC) is never the truncated half.
    /// Pinned by `trace_rounding_puts_extra_interval_after_reconfiguration`.
    pub fn run_trace(mut self, pre_intervals: usize, post_intervals: usize) -> SimResult {
        for _ in 0..pre_intervals {
            self.run_interval();
        }
        self.measuring = true;
        for _ in 0..post_intervals / 2 {
            self.run_interval();
        }
        if self.config.scheme.reconfigures() {
            self.reconfigure();
        }
        // Past the trace's one reconfiguration, monitor samples are dead.
        self.monitors_live = false;
        for _ in 0..post_intervals.div_ceil(2) {
            self.run_interval();
        }
        self.finish()
    }

    fn finish(mut self) -> SimResult {
        // Record mode: flush every thread's tap into the trace directory.
        // The cushion (a quarter of the drawn accesses plus a floor) gives
        // replays under other schemes — whose IPC feedback draws more or
        // fewer accesses — headroom before the cursor would wrap.
        if let Some(mix) = self.record_mix.take() {
            let mut logs: Vec<(Vec<TraceRecord>, bool)> = Vec::with_capacity(self.threads.len());
            for t in &mut self.threads {
                let cushion = (t.metrics.accesses / 4 + 1024) as usize;
                logs.push(
                    t.source
                        .finish_tap(cushion)
                        .expect("trace_record set but tap disabled"),
                );
            }
            write_trace(std::path::Path::new(&self.config.trace_record), &mix, &logs)
                .unwrap_or_else(|e| panic!("writing trace to {}: {e}", self.config.trace_record));
        }
        let move_stats = self.llc.stats;
        self.system.demand_moves = self.system.demand_moves.max(move_stats.demand_moves);
        self.system.background_invalidations = move_stats.background_invalidations;
        self.system.bulk_invalidations = move_stats.bulk_invalidations;
        self.system.instant_moves = move_stats.instant_moves;
        self.system.cycles = self
            .threads
            .iter()
            .map(|t| t.metrics.cycles)
            .fold(0.0, f64::max);
        self.system.instructions = self.threads.iter().map(|t| t.metrics.instructions).sum();
        self.system.traffic = self.traffic.clone();
        let llc_accesses: u64 = self.threads.iter().map(|t| t.metrics.accesses).sum();
        let energy = EnergyModel::default().compute(
            self.system.cycles,
            self.system.instructions,
            llc_accesses,
            self.system.traffic.total_flit_hops(),
            self.system.dram_accesses,
        );
        SimResult {
            scheme: self.config.scheme.name(),
            threads: self.threads.into_iter().map(|t| t.metrics).collect(),
            system: self.system,
            energy,
            ipc_trace: self.ipc_trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdcs_workload::MixSpec;

    fn mix(names: &[&str]) -> WorkloadMix {
        WorkloadMix::from_spec(&MixSpec::Named(
            names.iter().map(|s| s.to_string()).collect(),
        ))
        .unwrap()
    }

    fn run_scheme(scheme: Scheme, names: &[&str]) -> SimResult {
        let mut config = SimConfig::small_test();
        config.scheme = scheme;
        Simulation::new(config, mix(names)).unwrap().run()
    }

    #[test]
    fn snuca_runs_and_counts() {
        let r = run_scheme(Scheme::SNuca, &["calculix", "milc"]);
        assert_eq!(r.threads.len(), 2);
        for t in &r.threads {
            assert!(t.instructions > 0.0);
            assert!(t.accesses > 0);
            assert!(t.ipc() > 0.0 && t.ipc() <= 2.0, "ipc {}", t.ipc());
        }
        assert!(r.system.traffic.total_flit_hops() > 0);
    }

    #[test]
    fn fitting_app_hits_streaming_app_misses() {
        // Run each alone: a streaming co-runner would thrash S-NUCA's
        // unpartitioned LRU banks and evict calculix — the paper's premise.
        let fit = run_scheme(Scheme::SNuca, &["calculix"]);
        let stream = run_scheme(Scheme::SNuca, &["milc"]);
        let calculix = &fit.threads[0];
        let milc = &stream.threads[0];
        assert!(
            calculix.hit_ratio() > 0.8,
            "calculix hit ratio {}",
            calculix.hit_ratio()
        );
        assert!(
            milc.hit_ratio() < 0.1,
            "milc hit ratio {}",
            milc.hit_ratio()
        );
    }

    #[test]
    fn cdcs_survives_streaming_corunners() {
        // Several streaming instances churn S-NUCA's shared LRU banks and
        // spread every access across the chip; CDCS isolates calculix in a
        // local partition. (A single milc cannot thrash 8 MB at our rates —
        // the paper's mixes use 14 instances.)
        let names = ["calculix", "milc", "milc", "milc", "milc", "milc", "milc"];
        let s = run_scheme(Scheme::SNuca, &names);
        let c = run_scheme(Scheme::cdcs(), &names);
        let fit_s = &s.threads[0];
        let fit_c = &c.threads[0];
        assert!(
            fit_c.ipc() > fit_s.ipc(),
            "CDCS calculix {} vs S-NUCA {}",
            fit_c.ipc(),
            fit_s.ipc()
        );
        // And CDCS slashes calculix's on-chip latency.
        assert!(
            fit_c.on_chip_per_access() < fit_s.on_chip_per_access() / 2.0,
            "on-chip: CDCS {} vs S-NUCA {}",
            fit_c.on_chip_per_access(),
            fit_s.on_chip_per_access()
        );
    }

    #[test]
    fn rnuca_beats_snuca_on_chip_latency() {
        let s = run_scheme(Scheme::SNuca, &["calculix", "bzip2"]);
        let r = run_scheme(Scheme::rnuca(), &["calculix", "bzip2"]);
        assert!(
            r.mean_on_chip_latency() < s.mean_on_chip_latency() / 2.0,
            "R-NUCA {} vs S-NUCA {}",
            r.mean_on_chip_latency(),
            s.mean_on_chip_latency()
        );
    }

    #[test]
    fn cdcs_beats_snuca_on_cache_fitting_app() {
        // calculix (192 KB) fits easily; under CDCS its VC is sized and
        // placed locally, so IPC must beat hashed S-NUCA placement.
        let s = run_scheme(Scheme::SNuca, &["calculix", "calculix"]);
        let c = run_scheme(Scheme::cdcs(), &["calculix", "calculix"]);
        let si = s.threads[0].ipc() + s.threads[1].ipc();
        let ci = c.threads[0].ipc() + c.threads[1].ipc();
        assert!(ci > si, "CDCS {ci} vs S-NUCA {si}");
    }

    #[test]
    fn jigsaw_reconfigures_and_stays_feasible() {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::jigsaw_random();
        // Disable the cost-benefit gate so every planned placement applies.
        config.reconfig_benefit_factor = 0.0;
        let r = Simulation::new(config, mix(&["calculix", "bzip2", "milc"]))
            .unwrap()
            .run();
        assert!(r.system.reconfigurations > 0);
    }

    #[test]
    fn benefit_gate_skips_noise_reconfigurations() {
        // With the gate enabled and a stationary workload, the steady state
        // applies few or no reconfigurations in the measured window.
        let r = run_scheme(Scheme::jigsaw_random(), &["calculix", "bzip2"]);
        assert!(
            r.system.reconfigurations <= 1,
            "{}",
            r.system.reconfigurations
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_scheme(Scheme::cdcs(), &["calculix", "bzip2"]);
        let b = run_scheme(Scheme::cdcs(), &["calculix", "bzip2"]);
        assert_eq!(a.system.instructions, b.system.instructions);
        assert_eq!(a.system.traffic, b.system.traffic);
        for (x, y) in a.threads.iter().zip(&b.threads) {
            assert_eq!(x.instructions, y.instructions);
            assert_eq!(x.accesses, y.accesses);
        }
    }

    #[test]
    fn too_many_threads_rejected() {
        let config = SimConfig::small_test(); // 16 tiles
        let m = WorkloadMix::from_spec(&MixSpec::RandomMultiThreaded {
            count: 3, // 24 threads
            mix_seed: 0,
        })
        .unwrap();
        assert!(Simulation::new(config, m).is_err());
    }

    #[test]
    fn multithreaded_mix_shares_process_vc() {
        let r = run_scheme(Scheme::cdcs(), &["ilbdc"]);
        assert_eq!(r.threads.len(), 8);
        // All threads make progress.
        for t in &r.threads {
            assert!(t.ipc() > 0.0);
        }
    }

    #[test]
    fn bulk_invalidation_records_pauses() {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::jigsaw_random();
        config.move_scheme = MoveScheme::BulkInvalidate;
        config.reconfig_benefit_factor = 0.0; // apply every placement
        let r = Simulation::new(config, mix(&["calculix", "bzip2"]))
            .unwrap()
            .run();
        assert!(r.system.pause_cycles > 0);
        assert!(r.system.bulk_invalidations > 0);
    }

    #[test]
    fn demand_moves_happen_under_cdcs() {
        let mut config = SimConfig::small_test();
        config.scheme = Scheme::cdcs();
        config.move_scheme = MoveScheme::DemandMove;
        // Two apps whose allocations change between epochs.
        let r = Simulation::new(config, mix(&["omnet", "xalancbmk", "bzip2"]))
            .unwrap()
            .run();
        assert_eq!(r.system.pause_cycles, 0, "demand moves never pause");
    }

    #[test]
    fn trace_rounding_puts_extra_interval_after_reconfiguration() {
        // `run_trace(_, 5)` must run floor(5/2) = 2 measured intervals,
        // reconfigure, then ceil(5/2) = 3 more — the odd interval belongs
        // to the post-boundary half (the recovery transient Fig. 17
        // plots). A bulk-invalidation pause marks the boundary in the
        // trace, which is what pins the rounding observably. Seeded and
        // identical across all three engines.
        let make = |reference: bool, intra: usize| {
            let mut config = SimConfig::small_test();
            config.scheme = Scheme::cdcs();
            config.move_scheme = MoveScheme::BulkInvalidate;
            config.reconfig_benefit_factor = 0.0; // force the mid-trace apply
            config.reference_engine = reference;
            config.intra_cell_threads = intra;
            Simulation::new(config, mix(&["omnet", "milc", "calculix"]))
                .unwrap()
                .run_trace(2, 5)
        };
        let r = make(false, 0);
        assert_eq!(r, make(true, 0), "engines diverged on an odd trace");
        assert_eq!(r, make(false, 2), "sharded path diverged on an odd trace");
        assert_eq!(r.system.reconfigurations, 1);
        // 5 interval points plus the pause marker the bulk invalidation
        // inserts — which must sit after exactly 2 measured intervals.
        assert_eq!(r.ipc_trace.len(), 6, "trace: {:?}", r.ipc_trace);
        for (i, &(_, ipc)) in r.ipc_trace.iter().enumerate() {
            if i == 2 {
                assert_eq!(ipc, 0.0, "pause marker must follow interval 2");
            } else {
                assert!(ipc > 0.0, "interval point {i} has no progress");
            }
        }
    }

    #[test]
    fn ipc_trace_is_recorded() {
        let r = run_scheme(Scheme::SNuca, &["calculix"]);
        assert!(!r.ipc_trace.is_empty());
        for w in r.ipc_trace.windows(2) {
            assert!(w[1].0 > w[0].0, "trace cycles must increase");
        }
    }
}
